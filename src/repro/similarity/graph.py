"""Dynamic sparse similarity graph.

The whole DynamicC stack — clustering state, objective functions,
feature extraction, DBSCAN — reads pairwise similarities from this
structure. It stores, for each object, the neighbours whose similarity
is at or above a storage threshold (absent pairs read as similarity 0,
matching the paper's "absence of an edge … represents non-similarity",
§2.1), and it supports the three dynamic operations of §3.1: add,
remove, update.

Candidate pairs come from a pluggable :class:`~repro.similarity.blocking.CandidateIndex`
(brute force, token blocking, or a spatial grid) so graph maintenance is
far cheaper than all-pairs scoring on realistic workloads.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from .base import SimilarityFunction
from .blocking import BruteForceIndex, CandidateIndex


def payloads_equal(a: Any, b: Any) -> bool:
    """Structural payload equality across the payload types the
    generators produce (numpy arrays don't define truthy ``==``)."""
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and bool((a == b).all())
        )
    try:
        return bool(a == b)
    except (TypeError, ValueError):
        return False


class SimilarityGraph:
    """Sparse, symmetric, dynamically-maintained similarity graph.

    Parameters
    ----------
    similarity:
        The pairwise measure (Table 1 lists one per dataset).
    index:
        Candidate generator; defaults to brute force (exact, O(n) per
        insert — fine for tests and small workloads).
    store_threshold:
        Pairs scoring strictly below this are not stored and read back
        as 0. A small positive threshold keeps the graph sparse without
        affecting clustering decisions (sub-threshold similarities are
        noise for every objective used in the paper).
    """

    def __init__(
        self,
        similarity: SimilarityFunction,
        index: CandidateIndex | None = None,
        store_threshold: float = 0.05,
    ) -> None:
        if not 0.0 <= store_threshold <= 1.0:
            raise ValueError("store_threshold must be in [0, 1]")
        self.similarity_fn = similarity
        self.index = index if index is not None else BruteForceIndex()
        self.store_threshold = store_threshold
        self._payloads: dict[int, Any] = {}
        # Per-object prepared payloads (tokens, coerced arrays…): the
        # parsing half of a similarity measure runs once per object
        # here, never once per scored pair.
        self._prepared: dict[int, Any] = {}
        self._adj: dict[int, dict[int, float]] = {}
        self._total_weight = 0.0
        #: Monotonic counter bumped on every structural change; derived
        #: caches (e.g. DBSCAN core status) key on it.
        self.version = 0

    # ------------------------------------------------------------------
    # Dynamic operations (§3.1: Adding / Removing / Updating)
    # ------------------------------------------------------------------
    def _insert(self, obj_id: int, payload: Any) -> None:
        """Shared add core: score against index candidates, no version bump."""
        if obj_id in self._payloads:
            raise KeyError(f"object {obj_id} already present")
        similarity = self.similarity_fn.similarity
        prepared = self.similarity_fn.prepare(payload)
        self._payloads[obj_id] = payload
        self._prepared[obj_id] = prepared
        row = self._adj[obj_id] = {}
        prepared_of = self._prepared
        threshold = self.store_threshold
        for other in self.index.candidates(payload):
            if other == obj_id or other not in self._payloads:
                continue
            sim = similarity(prepared, prepared_of[other])
            if sim >= threshold and sim > 0.0:
                row[other] = sim
                self._adj[other][obj_id] = sim
                self._total_weight += sim
        # Register with the index only after scoring so the index never
        # proposes the object to itself mid-insert.
        self.index.add(obj_id, payload)

    def add_object(self, obj_id: int, payload: Any) -> None:
        """Insert a new object, scoring it against index candidates."""
        self._insert(obj_id, payload)
        self.version += 1

    def add_objects(self, items: Mapping[int, Any]) -> None:
        """Insert a round of objects, equivalent to serial :meth:`add_object`.

        Candidates are generated per object against the already-inserted
        prefix (earlier round members included), so every new↔new pair
        is proposed and scored exactly once — from the later side — and
        every payload is prepared exactly once. One version bump covers
        the whole round.
        """
        inserted = 0
        try:
            for obj_id, payload in items.items():
                self._insert(obj_id, payload)
                inserted += 1
        finally:
            # A mid-batch failure (e.g. a duplicate id) must not leave
            # completed inserts invisible to version-keyed caches.
            if inserted:
                self.version += 1

    def remove_object(self, obj_id: int) -> None:
        """Remove an object and all its edges."""
        payload = self._payloads.pop(obj_id, None)
        if payload is None:
            raise KeyError(f"object {obj_id} not present")
        self._prepared.pop(obj_id, None)
        self.index.remove(obj_id, payload)
        for other, sim in self._adj.pop(obj_id).items():
            del self._adj[other][obj_id]
            self._total_weight -= sim
        self.version += 1

    def update_object(self, obj_id: int, payload: Any) -> None:
        """Replace an object's payload, rescoring its edges.

        §6.1 models an update as remove + add under the *same* id. An
        update that does not change the payload is a structural no-op
        (identical payload ⇒ identical edges), so it returns without
        rescoring — and without bumping ``version``, keeping derived
        caches valid.
        """
        current = self._payloads.get(obj_id)
        if current is None:
            raise KeyError(f"object {obj_id} not present")
        if payloads_equal(current, payload):
            return
        self.remove_object(obj_id)
        self.add_object(obj_id, payload)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def similarity(self, a: int, b: int) -> float:
        """Stored similarity of a pair; 0 when no edge (or a == b)."""
        if a == b:
            return 0.0
        return self._adj.get(a, {}).get(b, 0.0)

    def neighbors(self, obj_id: int) -> dict[int, float]:
        """Mapping other-id → similarity for stored edges of ``obj_id``."""
        return self._adj[obj_id]

    def payload(self, obj_id: int) -> Any:
        return self._payloads[obj_id]

    def object_ids(self) -> Iterator[int]:
        return iter(self._payloads)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def total_weight(self) -> float:
        """Sum of stored edge similarities (each pair counted once)."""
        return self._total_weight

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate stored edges once each as ``(a, b, sim)`` with a < b."""
        for a, nbrs in self._adj.items():
            for b, sim in nbrs.items():
                if a < b:
                    yield a, b, sim

    # ------------------------------------------------------------------
    # Connectivity (used by §5.3 "active" cluster sampling)
    # ------------------------------------------------------------------
    def component_of(self, seeds: Iterable[int]) -> set[int]:
        """All objects connected (via stored edges) to any seed."""
        seen: set[int] = set()
        queue: deque[int] = deque()
        for seed in seeds:
            if seed in self._payloads and seed not in seen:
                seen.add(seed)
                queue.append(seed)
        while queue:
            node = queue.popleft()
            for other in self._adj[node]:
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        return seen

    def components(self) -> list[set[int]]:
        """All connected components of the stored graph."""
        remaining = set(self._payloads)
        result = []
        while remaining:
            seed = next(iter(remaining))
            component = self.component_of([seed])
            result.append(component)
            remaining -= component
        return result

    # ------------------------------------------------------------------
    # Aggregates used by features / objectives
    # ------------------------------------------------------------------
    def intra_weight(self, members: Iterable[int]) -> float:
        """Sum of edge similarities among ``members`` (each pair once)."""
        member_set = set(members)
        total = 0.0
        for a in member_set:
            nbrs = self._adj.get(a)
            if not nbrs:
                continue
            for b, sim in nbrs.items():
                if b in member_set and a < b:
                    total += sim
        return total

    def cross_weight(self, left: Iterable[int], right: Iterable[int]) -> float:
        """Sum of edge similarities between two disjoint member sets."""
        left_set, right_set = set(left), set(right)
        if left_set & right_set:
            raise ValueError("cross_weight expects disjoint member sets")
        # Iterate the smaller side.
        if len(right_set) < len(left_set):
            left_set, right_set = right_set, left_set
        total = 0.0
        for a in left_set:
            for b, sim in self._adj.get(a, {}).items():
                if b in right_set:
                    total += sim
        return total
