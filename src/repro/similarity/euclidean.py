"""Euclidean-distance-derived similarity for numeric records.

The Access-like and Road-like datasets (Table 1) use Euclidean distance.
DynamicC's machinery operates on similarities in [0, 1], so we convert
with an exponential kernel ``sim = exp(-d / scale)``: monotone in the
distance, 1 at distance 0, and smoothly approaching 0 — which keeps the
similarity graph sparse once a storage threshold is applied.
"""

from __future__ import annotations

import math

import numpy as np

from .base import SimilarityFunction


def euclidean_distance(a, b) -> float:
    """Euclidean distance between two vectors (numpy arrays or sequences)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.linalg.norm(a - b))


class EuclideanSimilarity(SimilarityFunction):
    """``exp(-distance / scale)`` similarity between numeric vectors.

    Parameters
    ----------
    scale:
        Distance at which similarity decays to ``1/e``. Pick roughly the
        intra-cluster radius of the workload so same-cluster pairs score
        high and cross-cluster pairs decay towards zero.
    """

    name = "euclidean-exp"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def similarity(self, a, b) -> float:
        return math.exp(-euclidean_distance(a, b) / self.scale)

    def prepare(self, payload) -> np.ndarray:
        """Coerce to a float array once per object (``np.asarray`` is a
        no-op on the prepared value at pair-scoring time)."""
        return np.asarray(payload, dtype=float)

    def distance_for_similarity(self, sim: float) -> float:
        """Invert the kernel: the distance at which similarity equals ``sim``."""
        if not 0.0 < sim <= 1.0:
            raise ValueError("sim must be in (0, 1]")
        return -self.scale * math.log(sim)
