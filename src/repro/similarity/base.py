"""Similarity function interface.

Every clustering problem in the paper is defined over a pairwise
*similarity* in ``[0, 1]`` (Table 1 lists one measure per dataset).
Distance-based measures (Euclidean) are converted into similarities by
the concrete implementations so the rest of the system can stay
agnostic of the underlying metric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class SimilarityFunction(ABC):
    """A symmetric pairwise similarity measure with range ``[0, 1]``.

    Implementations must be deterministic and symmetric:
    ``similarity(a, b) == similarity(b, a)``.
    """

    #: Human-readable name used in reports and dataset descriptors.
    name: str = "similarity"

    @abstractmethod
    def similarity(self, a: Any, b: Any) -> float:
        """Return the similarity between two record payloads in [0, 1]."""

    def prepare(self, payload: Any) -> Any:
        """Pre-process a payload once for repeated scoring (identity by default).

        The similarity graph calls this once per stored object and
        passes the prepared values to :meth:`similarity`, so measures
        with a per-payload parsing step (tokenization, array coercion)
        pay it per *object* instead of per *pair*. Implementations must
        keep ``similarity(prepare(a), prepare(b)) ==
        similarity(a, b)`` — prepared values are an accepted input
        form, never a different semantic.
        """
        return payload

    def __call__(self, a: Any, b: Any) -> float:
        return self.similarity(a, b)

    def distance(self, a: Any, b: Any) -> float:
        """Complementary dissimilarity, ``1 - similarity``."""
        return 1.0 - self.similarity(a, b)


def clamp01(value: float) -> float:
    """Clamp a float to the closed unit interval.

    Floating point round-off in the vectorised similarity kernels can
    produce values like ``1.0000000000000002``; the clustering state
    asserts similarities stay within ``[0, 1]`` so we normalise here.
    """
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


class WeightedCombination(SimilarityFunction):
    """Convex combination of several similarity functions.

    The synthetic (Febrl-like) dataset uses a mixture of normalized
    Levenshtein and Jaccard similarity (Table 1); this combinator keeps
    that composition explicit and reusable.
    """

    name = "weighted-combination"

    def __init__(self, parts: list[tuple[SimilarityFunction, float]]):
        if not parts:
            raise ValueError("WeightedCombination requires at least one part")
        total = sum(weight for _, weight in parts)
        if total <= 0:
            raise ValueError("combination weights must sum to a positive value")
        self._parts = [(fn, weight / total) for fn, weight in parts]
        self.name = "+".join(fn.name for fn, _ in self._parts)

    def similarity(self, a: Any, b: Any) -> float:
        return clamp01(
            sum(weight * fn.similarity(a, b) for fn, weight in self._parts)
        )
