"""Table-driven similarity for hand-constructed examples and tests.

The paper's running example (Figures 1 and 2) defines seven objects
with explicit pairwise similarities; this class lets those examples be
expressed directly.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from .base import SimilarityFunction


class TableSimilarity(SimilarityFunction):
    """Similarity given by an explicit symmetric table.

    Parameters
    ----------
    pairs:
        Mapping from 2-element payload tuples to similarity. Pairs are
        looked up in both orders; missing pairs score 0.
    """

    name = "table"

    def __init__(self, pairs: Mapping[tuple[Hashable, Hashable], float]) -> None:
        self._table: dict[tuple[Hashable, Hashable], float] = {}
        for (a, b), sim in pairs.items():
            if not 0.0 <= sim <= 1.0:
                raise ValueError(f"similarity {sim} for ({a}, {b}) not in [0, 1]")
            self._table[(a, b)] = sim
            self._table[(b, a)] = sim

    def similarity(self, a: Hashable, b: Hashable) -> float:
        if a == b:
            return 1.0
        return self._table.get((a, b), 0.0)
