"""Jaccard similarity over token sets (used by the Cora-like dataset)."""

from __future__ import annotations

from typing import Iterable

from .base import SimilarityFunction


def tokenize(text: str) -> frozenset[str]:
    """Lower-case whitespace tokenization into a frozen token set."""
    return frozenset(token for token in text.lower().split() if token)


def jaccard(a: frozenset[str] | set[str], b: frozenset[str] | set[str]) -> float:
    """Plain Jaccard coefficient ``|a ∩ b| / |a ∪ b|`` (0 for two empty sets)."""
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


class JaccardSimilarity(SimilarityFunction):
    """Jaccard similarity between records exposing token sets.

    Accepts either raw strings (tokenized on the fly), iterables of
    tokens, or pre-computed ``frozenset`` payloads. Pre-tokenising once
    per record and passing frozensets is the fast path used by the
    dataset generators.
    """

    name = "jaccard"

    def similarity(self, a, b) -> float:
        return jaccard(self._as_tokens(a), self._as_tokens(b))

    def prepare(self, payload) -> frozenset[str]:
        """Tokenize once per object — pair scoring then skips ``_as_tokens``."""
        return self._as_tokens(payload)

    @staticmethod
    def _as_tokens(value) -> frozenset[str]:
        if isinstance(value, frozenset):
            return value
        if isinstance(value, str):
            return tokenize(value)
        if isinstance(value, Iterable):
            return frozenset(value)
        raise TypeError(f"cannot interpret {type(value)!r} as a token set")
