"""Uniform grid index for radius queries over numeric vectors.

The Road-like dataset has hundreds of thousands of 3-D points in the
paper; DBSCAN and the similarity graph both need "all points within
radius r" queries. A uniform grid with cell edge = query radius answers
those by scanning the 3^d neighbouring cells, which is near-O(1) for the
spatially uniform road data.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import product
from typing import Iterable

import numpy as np

from .base import SimilarityFunction
from .blocking import CandidateIndex


class GridIndex(CandidateIndex):
    """Dynamic uniform grid over d-dimensional points.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell. Radius queries with ``r <= cell_size``
        only need to inspect adjacent cells.
    """

    def __init__(self, cell_size: float, dims: int | None = None) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if dims is not None and dims < 1:
            raise ValueError("dims must be >= 1 when given")
        self.cell_size = float(cell_size)
        #: When set, cells are computed on the first ``dims`` coordinates
        #: only (a cheap blocking projection for higher-dimensional
        #: data); distance filters still use the full vectors.
        self.dims = dims
        self._cells: dict[tuple[int, ...], set[int]] = defaultdict(set)
        self._points: dict[int, np.ndarray] = {}

    def _cell_of(self, point: np.ndarray) -> tuple[int, ...]:
        projected = point if self.dims is None else point[: self.dims]
        return tuple(int(c) for c in np.floor(projected / self.cell_size))

    def add(self, obj_id: int, payload) -> None:
        point = np.asarray(payload, dtype=float)
        self._points[obj_id] = point
        self._cells[self._cell_of(point)].add(obj_id)

    def remove(self, obj_id: int, payload=None) -> None:
        point = self._points.pop(obj_id, None)
        if point is None:
            return
        cell = self._cell_of(point)
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(obj_id)
            if not bucket:
                del self._cells[cell]

    def candidates(self, payload) -> set[int]:
        """Ids in the cell of ``payload`` and all adjacent cells."""
        point = np.asarray(payload, dtype=float)
        center = self._cell_of(point)
        found: set[int] = set()
        for offset in product((-1, 0, 1), repeat=len(center)):
            bucket = self._cells.get(tuple(c + o for c, o in zip(center, offset)))
            if bucket:
                found.update(bucket)
        return found

    def within_radius(self, payload, radius: float) -> list[int]:
        """Exact radius query (candidates filtered by true distance)."""
        point = np.asarray(payload, dtype=float)
        if radius > self.cell_size:
            ids = self._range_candidates(point, radius)
        else:
            ids = self.candidates(point)
        hits = []
        for obj_id in ids:
            if np.linalg.norm(self._points[obj_id] - point) <= radius:
                hits.append(obj_id)
        return hits

    def _range_candidates(self, point: np.ndarray, radius: float) -> set[int]:
        """Candidates for radius queries larger than one cell."""
        span = int(np.ceil(radius / self.cell_size))
        center = self._cell_of(point)
        found: set[int] = set()
        offsets = range(-span, span + 1)
        for offset in product(offsets, repeat=len(center)):
            bucket = self._cells.get(tuple(c + o for c, o in zip(center, offset)))
            if bucket:
                found.update(bucket)
        return found

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._points


def pairwise_similarities(
    vectors: Iterable[np.ndarray],
    similarity: SimilarityFunction,
) -> np.ndarray:
    """Dense pairwise similarity matrix (testing / small-n helper)."""
    data = [np.asarray(v, dtype=float) for v in vectors]
    n = len(data)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            sim = similarity.similarity(data[i], data[j])
            matrix[i, j] = matrix[j, i] = sim
    return matrix
