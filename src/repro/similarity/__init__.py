"""Similarity substrate: measures, blocking indexes, and the dynamic graph."""

from .base import SimilarityFunction, WeightedCombination, clamp01
from .blocking import BruteForceIndex, CandidateIndex, TokenBlockingIndex
from .euclidean import EuclideanSimilarity, euclidean_distance
from .graph import SimilarityGraph
from .grid_index import GridIndex
from .jaccard import JaccardSimilarity, jaccard, tokenize
from .levenshtein import (
    LevenshteinSimilarity,
    levenshtein_distance,
    normalized_levenshtein,
)
from .trigram import CosineTrigramSimilarity, cosine_trigram, trigram_profile

__all__ = [
    "BruteForceIndex",
    "CandidateIndex",
    "CosineTrigramSimilarity",
    "EuclideanSimilarity",
    "GridIndex",
    "JaccardSimilarity",
    "LevenshteinSimilarity",
    "SimilarityFunction",
    "SimilarityGraph",
    "TokenBlockingIndex",
    "WeightedCombination",
    "clamp01",
    "cosine_trigram",
    "euclidean_distance",
    "jaccard",
    "levenshtein_distance",
    "normalized_levenshtein",
    "tokenize",
    "trigram_profile",
]
