"""Typed errors shared across the service layers.

Deliberately a leaf module (no intra-package imports): the stream,
replica and serve layers all raise these, so they must sit below every
one of them in the import graph.

Design notes
------------
* :class:`ConfigError` subclasses :class:`ValueError` so call sites
  (and tests) written against the historical ``ValueError`` contract of
  ``StreamConfig`` keep working while new code can catch the precise
  type.
* :class:`QuotaExceeded` carries structured fields (tenant, reason,
  limit, current) rather than only a message — a serving front end maps
  it straight to an HTTP 429 with a machine-readable body, and the
  ``reason`` doubles as the ``reason`` label on
  ``quota_rejections_total``.
"""

from __future__ import annotations

from typing import Any


class ServeError(Exception):
    """Base class for service-layer errors."""


class ConfigError(ServeError, ValueError):
    """A service configuration is invalid or self-contradictory.

    Raised with an actionable message: what was wrong, what the valid
    choices are, and (for unknown knobs) the closest valid spelling.
    """


class QuotaExceeded(ServeError, RuntimeError):
    """A tenant's ingest was rejected by one of its quotas.

    Attributes
    ----------
    tenant:
        The tenant whose quota rejected the call.
    reason:
        Which quota fired: ``"ops_rate"`` (token bucket),
        ``"max_objects"`` (live-object cap) or ``"backlog"`` (pending
        micro-batch cap). Also the ``reason`` label on the
        ``quota_rejections_total`` counter.
    limit / current:
        The configured bound and the value that tripped it.
    retry_after_s:
        For ``"ops_rate"`` only: seconds until the token bucket could
        admit this batch (``None`` for hard caps, where retrying
        without deleting data cannot succeed).
    """

    def __init__(
        self,
        tenant: str,
        reason: str,
        message: str,
        *,
        limit: Any = None,
        current: Any = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.limit = limit
        self.current = current
        self.retry_after_s = retry_after_s


class UnknownTenantError(ServeError, KeyError):
    """A tenant name that the service has never seen and cannot create."""


__all__ = [
    "ConfigError",
    "QuotaExceeded",
    "ServeError",
    "UnknownTenantError",
]
