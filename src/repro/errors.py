"""Typed errors shared across the service layers.

Deliberately a leaf module (no intra-package imports): the stream,
replica and serve layers all raise these, so they must sit below every
one of them in the import graph.

Design notes
------------
* :class:`ConfigError` subclasses :class:`ValueError` so call sites
  (and tests) written against the historical ``ValueError`` contract of
  ``StreamConfig`` keep working while new code can catch the precise
  type.
* :class:`QuotaExceeded` carries structured fields (tenant, reason,
  limit, current) rather than only a message — a serving front end maps
  it straight to an HTTP 429 with a machine-readable body, and the
  ``reason`` doubles as the ``reason`` label on
  ``quota_rejections_total``.
"""

from __future__ import annotations

from typing import Any


class ServeError(Exception):
    """Base class for service-layer errors."""


class ConfigError(ServeError, ValueError):
    """A service configuration is invalid or self-contradictory.

    Raised with an actionable message: what was wrong, what the valid
    choices are, and (for unknown knobs) the closest valid spelling.
    """


class QuotaExceeded(ServeError, RuntimeError):
    """A tenant's ingest was rejected by one of its quotas.

    Attributes
    ----------
    tenant:
        The tenant whose quota rejected the call.
    reason:
        Which quota fired: ``"ops_rate"`` (token bucket),
        ``"max_objects"`` (live-object cap) or ``"backlog"`` (pending
        micro-batch cap). Also the ``reason`` label on the
        ``quota_rejections_total`` counter.
    limit / current:
        The configured bound and the value that tripped it.
    retry_after_s:
        For ``"ops_rate"`` only: seconds until the token bucket could
        admit this batch (``None`` for hard caps, where retrying
        without deleting data cannot succeed).
    """

    def __init__(
        self,
        tenant: str,
        reason: str,
        message: str,
        *,
        limit: Any = None,
        current: Any = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.limit = limit
        self.current = current
        self.retry_after_s = retry_after_s


class UnknownTenantError(ServeError, KeyError):
    """A tenant name that the service has never seen and cannot create."""


class DurabilityError(ServeError, RuntimeError):
    """A durability boundary kept failing after the retry policy gave up.

    Raised by :meth:`repro.faults.RetryPolicy.run` when a retryable
    error survives every attempt (or the deadline). Chained from the
    last underlying error, so ``err.__cause__`` holds the final
    ``OSError``.

    Attributes
    ----------
    boundary:
        The named boundary that exhausted (``"oplog.append"``,
        ``"checkpoint.save"``, ``"ship.publish"``, ...) — same
        vocabulary as the injection registry and the
        ``retry_attempts_total`` counter labels.
    attempts:
        How many attempts were made before giving up.
    """

    def __init__(self, boundary: str, attempts: int, message: str) -> None:
        super().__init__(message)
        self.boundary = boundary
        self.attempts = attempts


class DegradedError(ServeError, RuntimeError):
    """An ingest was rejected because a durability path is degraded.

    The write-path analogue of :class:`QuotaExceeded`, with the same
    structured shape: a serving front end maps it straight to an HTTP
    503 with a machine-readable body and a ``Retry-After`` header.
    Reads are unaffected — degraded mode sheds writes, not queries.

    Attributes
    ----------
    tenant:
        The tenant whose ingest was rejected, or ``None`` when the
        *shared* durability path (the multi-tenant oplog) is down and
        every tenant is affected.
    reason:
        The degraded boundary (``"oplog.append"``,
        ``"checkpoint.save"``, ...); doubles as the ``reason`` label on
        ``degraded_rejections_total``.
    retry_after_s:
        Seconds until the breaker admits its next trial write — when
        retrying could succeed. ``None`` means no probe is scheduled.
    """

    def __init__(
        self,
        tenant: str | None,
        reason: str,
        message: str,
        *,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s


__all__ = [
    "ConfigError",
    "DegradedError",
    "DurabilityError",
    "QuotaExceeded",
    "ServeError",
    "UnknownTenantError",
]
