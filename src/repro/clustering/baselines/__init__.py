"""Incremental baselines the paper compares against (§7.1)."""

from .greedy import GreedyIncremental
from .naive import NaiveIncremental

__all__ = ["GreedyIncremental", "NaiveIncremental"]
