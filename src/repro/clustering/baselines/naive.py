"""Naive incremental baseline (§7.1).

"It compares each new object with existing clusters and then assigns an
object to the closest cluster or a new cluster. This method does not
compute the objective score for the clustering. Its decisions are only
based on heuristics such as similarity threshold."

A merge-only strategy: the cluster structure is never revisited, which
is exactly why its quality degrades as updates accumulate (Fig. 6,
Table 2 — "the 'merge-only' strategy applied in Naive can not work well
when the clustering structure changes").
"""

from __future__ import annotations

from repro.clustering.incremental import IncrementalClusterer
from repro.similarity.graph import SimilarityGraph


class NaiveIncremental(IncrementalClusterer):
    """Assign each new object to its most similar cluster above a threshold.

    Parameters
    ----------
    graph:
        The method's similarity graph.
    threshold:
        Minimum average similarity between the object and a cluster for
        the object to join it; below, the object starts its own cluster.
    """

    name = "naive"

    def __init__(self, graph: SimilarityGraph, threshold: float = 0.5) -> None:
        super().__init__(graph)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self._pending: list[int] = []

    def _place_new_object(self, obj_id: int) -> None:
        # Defer placement to _recluster so removals/updates of this round
        # have settled before similarity comparison.
        self.clustering.add_singleton(obj_id)
        self._pending.append(obj_id)

    def _recluster(self, changed: set[int]) -> None:
        for obj_id in self._pending:
            if obj_id not in self.clustering:
                continue
            self._assign(obj_id)
        self._pending.clear()

    def _assign(self, obj_id: int) -> None:
        own_cid = self.clustering.cluster_of(obj_id)
        best_cid: int | None = None
        best_avg = self.threshold
        for other_cid, cross in self.clustering.neighbor_clusters(own_cid).items():
            avg = cross / self.clustering.size(other_cid)
            if avg >= best_avg:
                best_avg = avg
                best_cid = other_cid
        if best_cid is not None:
            self.clustering.merge(own_cid, best_cid)
