"""Greedy incremental baseline — Gruenheid et al. [26] style (§7.1).

"This method … uses three operators to determine a candidate clustering
which makes it able to terminate in polynomial time."

The three operators are merge, split and move, applied greedily — but
*only within the part of the graph affected by the round's changes*
(the connected components containing added/updated/removed objects),
which is what makes it lighter than the batch algorithm. Unlike
DynamicC it has no learned model: every affected cluster pair is a
candidate each round, so its cost grows with the size of the affected
components (the latency gap to DynamicC in Figs. 5(e) and 7).
"""

from __future__ import annotations

from repro.clustering.batch.hill_climbing import HillClimbing
from repro.clustering.incremental import IncrementalClusterer
from repro.clustering.objectives.base import ObjectiveFunction
from repro.similarity.graph import SimilarityGraph


class GreedyIncremental(IncrementalClusterer):
    """Localized greedy re-clustering with merge/split/move operators.

    Parameters
    ----------
    graph:
        The method's similarity graph.
    objective:
        Objective function the operators optimise (must match the
        underlying clustering problem).
    max_passes:
        Pass bound forwarded to the localized search.
    """

    name = "greedy"

    def __init__(
        self,
        graph: SimilarityGraph,
        objective: ObjectiveFunction,
        max_passes: int = 50,
    ) -> None:
        super().__init__(graph)
        self.objective = objective
        self._search = HillClimbing(
            objective, strategy="greedy-pass", max_passes=max_passes
        )

    def _recluster(self, changed: set[int]) -> None:
        if not changed:
            return
        # Scope: everything similarity-connected to a changed object.
        scope = self.graph.component_of(changed)
        self.clustering = self._search.cluster(
            self.graph, initial=self.clustering, restrict_to=scope
        )
