"""Clustering substrate: state, objectives, batch algorithms, baselines."""

from .incremental import IncrementalClusterer
from .membership import (
    canonical_partition,
    labels_to_partition,
    partition_to_labels,
    restrict_partition,
    same_clustering,
)
from .state import Clustering

__all__ = [
    "Clustering",
    "IncrementalClusterer",
    "canonical_partition",
    "labels_to_partition",
    "partition_to_labels",
    "restrict_partition",
    "same_clustering",
]
