"""Robust k-means batch algorithm: Lloyd seeding + hill-climbing refinement.

The paper evaluates k-means with "a more robust batch algorithm" than
plain heuristics (§7.1). This wrapper composes the two substrates:
k-means++/Lloyd provides a strong initial partition from scratch, and
the generic objective-driven hill climber refines it (and is the only
stage used when an initial clustering is supplied, e.g. by the Greedy
baseline's localized re-clustering).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.objectives.kmeans import KMeansObjective
from repro.clustering.state import Clustering
from repro.evolution import EvolutionLog
from repro.similarity.graph import SimilarityGraph

from .hill_climbing import HillClimbing
from .kmeans_lloyd import LloydKMeans


class KMeansBatch:
    """Batch k-means through the HillClimbing ``cluster()`` interface.

    Parameters
    ----------
    objective:
        The fixed-k objective shared with the incremental methods.
    seed:
        Lloyd initialisation seed.
    max_passes:
        Refinement pass bound.
    """

    def __init__(
        self,
        objective: KMeansObjective,
        seed: int = 0,
        max_passes: int = 50,
    ) -> None:
        self.objective = objective
        self.seed = seed
        self._refiner = HillClimbing(objective, max_passes=max_passes)

    def cluster(
        self,
        graph: SimilarityGraph,
        initial: Clustering | None = None,
        log: EvolutionLog | None = None,
        restrict_to=None,
    ) -> Clustering:
        if initial is None:
            vectors = {
                obj_id: np.asarray(graph.payload(obj_id), dtype=float)
                for obj_id in graph.object_ids()
            }
            if len(vectors) <= self.objective.k:
                initial = Clustering.singletons(graph)
            else:
                labels = LloydKMeans(self.objective.k, seed=self.seed).fit(vectors)
                initial = Clustering.from_labels(graph, labels)
        return self._refiner.cluster(
            graph, initial=initial, log=log, restrict_to=restrict_to
        )
