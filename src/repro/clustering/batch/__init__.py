"""Batch clustering algorithms (§7.1: DBSCAN and Hill-climbing, plus Lloyd)."""

from .dbscan import DBSCAN, DBSCANResult, eps_neighborhood, is_core
from .hill_climbing import HillClimbing
from .kmeans_batch import KMeansBatch
from .kmeans_lloyd import LloydKMeans, sse_of

__all__ = [
    "DBSCAN",
    "DBSCANResult",
    "HillClimbing",
    "KMeansBatch",
    "LloydKMeans",
    "eps_neighborhood",
    "is_core",
    "sse_of",
]
