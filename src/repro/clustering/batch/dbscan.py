"""DBSCAN over the dynamic similarity graph (batch algorithm, §7.1).

Classic DBSCAN [20] phrased in similarity space: the ε-neighbourhood of
an object is the set of objects with stored similarity ≥ ``sim_eps``
(for Euclidean payloads, ``sim_eps = exp(-ε / scale)`` under the
exponential kernel, so this is exactly a radius-ε query). An object is
a *core point* when its neighbourhood (including itself) holds at least
``min_pts`` objects. Clusters are the connected components of core
points plus their density-reachable border points; noise objects end up
in singleton clusters so the result stays a partition, but they are
reported separately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.state import Clustering
from repro.similarity.graph import SimilarityGraph


@dataclass
class DBSCANResult:
    """Outcome of a DBSCAN run."""

    clustering: Clustering
    core_points: set[int]
    noise: set[int]


def eps_neighborhood(graph: SimilarityGraph, obj_id: int, sim_eps: float) -> set[int]:
    """Objects with similarity ≥ ``sim_eps`` to ``obj_id`` (excluding itself)."""
    return {
        other
        for other, sim in graph.neighbors(obj_id).items()
        if sim >= sim_eps
    }


def is_core(graph: SimilarityGraph, obj_id: int, sim_eps: float, min_pts: int) -> bool:
    """Core-point test; the point itself counts towards ``min_pts``."""
    return len(eps_neighborhood(graph, obj_id, sim_eps)) + 1 >= min_pts


class DBSCAN:
    """Density-based batch clustering.

    Parameters
    ----------
    sim_eps:
        Minimum similarity for two objects to be ε-neighbours.
    min_pts:
        Minimum neighbourhood size (including the object) for a core point.
    """

    def __init__(self, sim_eps: float, min_pts: int) -> None:
        if not 0.0 < sim_eps <= 1.0:
            raise ValueError("sim_eps must be in (0, 1]")
        if min_pts < 1:
            raise ValueError("min_pts must be >= 1")
        self.sim_eps = sim_eps
        self.min_pts = min_pts

    def run(self, graph: SimilarityGraph) -> DBSCANResult:
        clustering = Clustering(graph)
        assigned: set[int] = set()
        core_points: set[int] = set()
        noise: set[int] = set()

        for obj_id in graph.object_ids():
            if obj_id in assigned:
                continue
            neighborhood = eps_neighborhood(graph, obj_id, self.sim_eps)
            if len(neighborhood) + 1 < self.min_pts:
                continue  # border or noise; settled later
            # Grow a new cluster from this core point.
            core_points.add(obj_id)
            members = {obj_id}
            assigned.add(obj_id)
            queue: deque[int] = deque(neighborhood)
            while queue:
                candidate = queue.popleft()
                if candidate in assigned:
                    continue
                assigned.add(candidate)
                members.add(candidate)
                candidate_nbrs = eps_neighborhood(graph, candidate, self.sim_eps)
                if len(candidate_nbrs) + 1 >= self.min_pts:
                    core_points.add(candidate)
                    queue.extend(
                        other for other in candidate_nbrs if other not in assigned
                    )
            cid = clustering.add_singleton(next(iter(members)))
            for member in members:
                if member not in clustering:
                    other_cid = clustering.add_singleton(member)
                    cid = clustering.merge(cid, other_cid)

        # Anything unassigned has no core in reach: noise, kept as singletons.
        for obj_id in graph.object_ids():
            if obj_id not in assigned:
                noise.add(obj_id)
                clustering.add_singleton(obj_id)

        return DBSCANResult(clustering=clustering, core_points=core_points, noise=noise)
