"""Lloyd's k-means with k-means++ seeding.

The paper's k-means experiments drive the *Hill-climbing* batch
algorithm over :class:`~repro.clustering.objectives.kmeans.KMeansObjective`;
this classic Lloyd implementation serves as an independent reference
(tests compare the two) and as a fast seeding utility for workloads.
"""

from __future__ import annotations

import numpy as np


class LloydKMeans:
    """Standard Lloyd iterations over a dict of id → vector.

    Parameters
    ----------
    k:
        Number of clusters.
    max_iter:
        Iteration cap.
    seed:
        RNG seed for k-means++ initialisation.
    """

    def __init__(self, k: int, max_iter: int = 100, seed: int = 0) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.max_iter = max_iter
        self.seed = seed

    def fit(self, vectors: dict[int, np.ndarray]) -> dict[int, int]:
        """Cluster the vectors; returns object-id → cluster-label (0..k-1)."""
        ids = sorted(vectors)
        if len(ids) < self.k:
            raise ValueError("fewer objects than clusters")
        data = np.array([np.asarray(vectors[i], dtype=float) for i in ids])
        centers = self._kmeanspp(data)
        labels = np.zeros(len(ids), dtype=int)
        for _ in range(self.max_iter):
            # Assignment step.
            distances = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            # Update step; empty clusters re-seeded on the farthest point.
            for j in range(self.k):
                mask = labels == j
                if mask.any():
                    centers[j] = data[mask].mean(axis=0)
                else:
                    farthest = int(np.argmax(np.min(distances, axis=1)))
                    centers[j] = data[farthest]
        self.centers_ = centers
        return {obj_id: int(label) for obj_id, label in zip(ids, labels)}

    def _kmeanspp(self, data: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        n = len(data)
        centers = [data[rng.integers(n)]]
        for _ in range(1, self.k):
            dist_sq = np.min(
                [np.sum((data - c) ** 2, axis=1) for c in centers], axis=0
            )
            total = float(dist_sq.sum())
            if total <= 0:
                centers.append(data[rng.integers(n)])
                continue
            probabilities = dist_sq / total
            centers.append(data[rng.choice(n, p=probabilities)])
        return np.array(centers, dtype=float)


def sse_of(vectors: dict[int, np.ndarray], labels: dict[int, int]) -> float:
    """Within-cluster sum of squares of a labelling (for tests/benches)."""
    groups: dict[int, list[np.ndarray]] = {}
    for obj_id, label in labels.items():
        groups.setdefault(label, []).append(np.asarray(vectors[obj_id], dtype=float))
    total = 0.0
    for members in groups.values():
        stack = np.array(members)
        center = stack.mean(axis=0)
        total += float(np.sum((stack - center) ** 2))
    return total
