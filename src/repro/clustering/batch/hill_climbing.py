"""Hill-climbing batch clustering (§7.1 "Implementations").

"A general batch algorithm which can be used for any objective function
based clustering method. It examines all immediate neighbors (potential
migrations) and selects the clustering update providing the highest
improvement."

Two search strategies are provided:

* ``"steepest"`` — the literal description above: every iteration scans
  *all* candidate merges/splits/moves and applies the single best
  improving one. Exact but O(candidates) per applied change; usable on
  small inputs and in tests.
* ``"greedy-pass"`` (default) — repeated passes; within a pass each
  cluster greedily applies its best improving merge, then each cluster
  its best improving split, then objects their best improving moves.
  The objective decreases monotonically, so this is still hill
  climbing, with the per-change scan cost amortised; it is the variant
  used for the larger experiments (the paper itself reports
  Hill-climbing takes >3 h on Road, so the batch method is expected to
  be slow — just not uselessly so).

  For objectives declaring ``locality == "local"`` the passes after the
  first are *scoped*: only clusters within ``objective.delta_horizon``
  adjacency hops of the previous pass's applied changes are
  re-evaluated (the dirty worklist). A cluster outside that frontier
  entered the pass with no improving change available, and by the
  locality contract nothing has moved its deltas since — so skipping it
  removes redundant rescans (the same §6.4 convergence argument
  DynamicC's serving loop uses). An improvement created *mid-pass* next
  to a skipped cluster is picked up one pass later instead of within
  the pass, so change ordering can differ from the full rescan in
  principle; the seeded equivalence suite
  (`tests/test_incremental_deltas.py`) pins both searches to identical
  results. Globally-coupled objectives (fixed-k k-means) keep full
  rescans.

Candidate changes are restricted to the similarity graph: only clusters
sharing at least one stored edge can profitably merge under any of the
paper's objectives, and only the objects with the weakest link to their
cluster are split candidates.

When an :class:`~repro.core.evolution.EvolutionLog` is supplied, every
applied change is recorded (merges and splits; moves decompose into a
split followed by a merge per §4.1), which is exactly the historical
cluster evolution DynamicC trains on.
"""

from __future__ import annotations

from typing import Iterable

from repro.clustering.objectives.base import ObjectiveFunction
from repro.clustering.state import Clustering
from repro.evolution import EvolutionLog
from repro.similarity.graph import SimilarityGraph


class HillClimbing:
    """Objective-based batch clustering by monotone local search.

    Parameters
    ----------
    objective:
        The objective function to minimise.
    strategy:
        ``"greedy-pass"`` (default) or ``"steepest"``.
    max_passes:
        Safety bound on the number of full passes (greedy-pass) or
        applied changes (steepest) — the objective-decrease invariant
        guarantees termination, the bound guards against pathological
        slow convergence.
    split_candidates:
        How many of the weakest-linked objects per cluster to consider
        as split-out candidates in each pass.
    """

    def __init__(
        self,
        objective: ObjectiveFunction,
        strategy: str = "greedy-pass",
        max_passes: int = 200,
        split_candidates: int = 2,
        chain_depth: int = 4,
        chain_threshold: float = 0.3,
        tolerance: float = 1e-9,
    ) -> None:
        if strategy not in ("greedy-pass", "steepest"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.objective = objective
        self.strategy = strategy
        self.max_passes = max_passes
        self.split_candidates = split_candidates
        #: When a cluster's best pairwise merge is uphill, try merging a
        #: *chain* of up to this many closest clusters at once (compound
        #: migration). 0 disables. Needed because some objectives
        #: (DB-index) stall pairwise on groups of mutually similar
        #: fragments whose complete merge improves.
        self.chain_depth = chain_depth
        #: Minimum average cross-similarity for a cluster to join a chain.
        self.chain_threshold = chain_threshold
        self.tolerance = tolerance

    # ------------------------------------------------------------------
    def cluster(
        self,
        graph: SimilarityGraph,
        initial: Clustering | None = None,
        log: EvolutionLog | None = None,
        restrict_to: Iterable[int] | None = None,
    ) -> Clustering:
        """Run batch clustering, returning the final clustering.

        Parameters
        ----------
        graph:
            Similarity graph over the objects to cluster.
        initial:
            Starting clustering; defaults to all-singletons (§4.2).
        log:
            Optional evolution log receiving every applied change.
        restrict_to:
            When given, only clusters containing at least one of these
            objects participate in the search (used by the Greedy
            baseline to localise re-clustering).
        """
        clustering = initial if initial is not None else Clustering.singletons(graph)
        scope = set(restrict_to) if restrict_to is not None else None
        if self.strategy == "steepest":
            self._run_steepest(clustering, log, scope)
        else:
            self._run_greedy_passes(clustering, log, scope)
        return clustering

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _in_scope(clustering: Clustering, cid: int, scope: set[int] | None) -> bool:
        if scope is None:
            return True
        return bool(clustering.members_view(cid) & scope)

    def _dirty_frontier(self, clustering: Clustering, touched: set[int]) -> set[int]:
        """Touched clusters expanded ``delta_horizon`` adjacency hops.

        The next scoped pass re-evaluates exactly this set: by the
        objective's locality contract no cluster further out has had a
        candidate delta change sign since its own last evaluation.
        """
        frontier = {cid for cid in touched if clustering.contains_cluster(cid)}
        boundary = set(frontier)
        for _ in range(max(self.objective.delta_horizon, 1)):
            grown: set[int] = set()
            for cid in boundary:
                grown.update(clustering.neighbor_clusters(cid))
            grown -= frontier
            if not grown:
                break
            frontier |= grown
            boundary = grown
        return frontier

    # ------------------------------------------------------------------
    # Greedy-pass strategy
    # ------------------------------------------------------------------
    def _run_greedy_passes(
        self,
        clustering: Clustering,
        log: EvolutionLog | None,
        scope: set[int] | None,
    ) -> None:
        scoped = self.objective.locality == "local"
        worklist: set[int] | None = None  # None = evaluate every cluster
        for _ in range(self.max_passes):
            touched: set[int] = set()
            changed = self._merge_pass(clustering, log, scope, worklist, touched)
            changed |= self._split_pass(clustering, log, scope, worklist, touched)
            changed |= self._move_pass(clustering, log, scope, worklist, touched)
            if not changed:
                break
            if scoped:
                worklist = self._dirty_frontier(clustering, touched)
                if not worklist:
                    break

    def _merge_pass(
        self,
        clustering: Clustering,
        log: EvolutionLog | None,
        scope: set[int] | None,
        worklist: set[int] | None = None,
        touched: set[int] | None = None,
    ) -> bool:
        changed = False
        # Snapshot ids: merges mint fresh ids, so newly-created clusters
        # are reconsidered in the next pass, not this one.
        for cid in list(clustering.cluster_ids()):
            if worklist is not None and cid not in worklist:
                continue
            if not clustering.contains_cluster(cid):
                continue
            if not self._in_scope(clustering, cid, scope):
                continue
            best_delta = -self.tolerance
            best_other: int | None = None
            candidates = list(clustering.neighbor_clusters(cid))
            extra = self.objective.merge_candidates(clustering, cid)
            if extra:
                seen = set(candidates)
                candidates.extend(other for other in extra if other not in seen)
            for other in candidates:
                if scope is not None and not self._in_scope(clustering, other, scope):
                    continue
                delta = self.objective.delta_merge(clustering, cid, other)
                if delta < best_delta:
                    best_delta = delta
                    best_other = other
            if best_other is not None:
                if log is not None:
                    log.record_merge(
                        clustering.members(cid), clustering.members(best_other)
                    )
                new_cid = self.objective.apply_merge(clustering, cid, best_other)
                if touched is not None:
                    touched.add(new_cid)
                changed = True
            elif self.chain_depth >= 2:
                changed |= self._try_chain_merge(clustering, cid, log, scope, touched)
        return changed

    def _try_chain_merge(
        self,
        clustering: Clustering,
        cid: int,
        log: EvolutionLog | None,
        scope: set[int] | None,
        touched: set[int] | None = None,
    ) -> bool:
        """Compound move: merge ``cid`` with its closest clusters at once.

        The chain grows greedily by average cross-similarity (≥
        ``chain_threshold``); the first prefix whose *group* merge delta
        improves the objective is applied.
        """
        chain = [cid]
        chain_sizes = clustering.size(cid)
        # Candidate pool: neighbours of anything in the chain.
        while len(chain) <= self.chain_depth:
            best_avg = self.chain_threshold
            best_next: int | None = None
            for member in chain:
                for other, cross in clustering.neighbor_clusters(member).items():
                    if other in chain:
                        continue
                    if scope is not None and not self._in_scope(clustering, other, scope):
                        continue
                    avg = cross / (clustering.size(member) * clustering.size(other))
                    if avg >= best_avg:
                        best_avg = avg
                        best_next = other
            if best_next is None:
                return False
            chain.append(best_next)
            chain_sizes += clustering.size(best_next)
            if len(chain) >= 3:
                delta = self.objective.delta_merge_group(clustering, chain)
                if delta < -self.tolerance:
                    if log is not None:
                        accumulated = clustering.members(chain[0])
                        for other in chain[1:]:
                            log.record_merge(accumulated, clustering.members(other))
                            accumulated = accumulated | clustering.members(other)
                    new_cid = self.objective.apply_merge_group(clustering, chain)
                    if touched is not None:
                        touched.add(new_cid)
                    return True
        return False

    def _weakest_members(self, clustering: Clustering, cid: int) -> list[int]:
        """Members orderd by ascending similarity to the rest of the cluster."""
        members = clustering.members_view(cid)
        if len(members) < 2:
            return []
        graph = clustering.graph
        weights = []
        for obj_id in members:
            weight = sum(
                sim
                for other, sim in graph.neighbors(obj_id).items()
                if other in members
            )
            weights.append((weight, obj_id))
        weights.sort()
        return [obj_id for _, obj_id in weights[: self.split_candidates]]

    def _split_pass(
        self,
        clustering: Clustering,
        log: EvolutionLog | None,
        scope: set[int] | None,
        worklist: set[int] | None = None,
        touched: set[int] | None = None,
    ) -> bool:
        changed = False
        for cid in list(clustering.cluster_ids()):
            if worklist is not None and cid not in worklist and (
                touched is None or cid not in touched
            ):
                continue
            if not clustering.contains_cluster(cid):
                continue
            if not self._in_scope(clustering, cid, scope):
                continue
            for obj_id in self._weakest_members(clustering, cid):
                part = {obj_id}
                delta = self.objective.delta_split(clustering, cid, part)
                if delta < -self.tolerance:
                    if log is not None:
                        log.record_split(clustering.members(cid), frozenset(part))
                    rest_cid, part_cid = self.objective.apply_split(
                        clustering, cid, part
                    )
                    if touched is not None:
                        touched.add(rest_cid)
                        touched.add(part_cid)
                    changed = True
                    break  # cid no longer exists; fresh ids seen next pass
        return changed

    def _move_pass(
        self,
        clustering: Clustering,
        log: EvolutionLog | None,
        scope: set[int] | None,
        worklist: set[int] | None = None,
        touched: set[int] | None = None,
    ) -> bool:
        proposals = self.objective.refinement_moves(clustering)
        if proposals is not None:
            return self._apply_move_proposals(clustering, proposals, log, scope)
        changed = False
        graph = clustering.graph
        for cid in list(clustering.cluster_ids()):
            if worklist is not None and cid not in worklist and (
                touched is None or cid not in touched
            ):
                continue
            if not clustering.contains_cluster(cid):
                continue
            if not self._in_scope(clustering, cid, scope):
                continue
            for obj_id in self._weakest_members(clustering, cid):
                current = clustering.cluster_of(obj_id)
                target_cids = {
                    clustering.cluster_of(other)
                    for other in graph.neighbors(obj_id)
                    if other in clustering
                }
                target_cids.discard(current)
                best_delta = -self.tolerance
                best_target: int | None = None
                for target in target_cids:
                    delta = self.objective.delta_move(clustering, obj_id, target)
                    if delta < best_delta:
                        best_delta = delta
                        best_target = target
                if best_target is not None:
                    if log is not None:
                        # A move is a split followed by a merge (§4.1).
                        source_members = clustering.members(current)
                        if len(source_members) > 1:
                            log.record_split(source_members, frozenset({obj_id}))
                        log.record_merge(
                            frozenset({obj_id}), clustering.members(best_target)
                        )
                    self.objective.apply_move(clustering, obj_id, best_target)
                    if touched is not None:
                        touched.add(best_target)
                        if clustering.contains_cluster(current):
                            touched.add(current)
                    changed = True
                    break
        return changed

    def _apply_move_proposals(
        self,
        clustering: Clustering,
        proposals: list[tuple[int, int]],
        log: EvolutionLog | None,
        scope: set[int] | None,
    ) -> bool:
        """Apply objective-proposed moves, each verified by its delta."""
        changed = False
        for obj_id, target in proposals:
            if obj_id not in clustering or not clustering.contains_cluster(target):
                continue
            current = clustering.cluster_of(obj_id)
            if current == target:
                continue
            if scope is not None and obj_id not in scope:
                continue
            delta = self.objective.delta_move(clustering, obj_id, target)
            if delta < -self.tolerance:
                if log is not None:
                    source_members = clustering.members(current)
                    if len(source_members) > 1:
                        log.record_split(source_members, frozenset({obj_id}))
                    log.record_merge(
                        frozenset({obj_id}), clustering.members(target)
                    )
                self.objective.apply_move(clustering, obj_id, target)
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Steepest strategy (literal paper description)
    # ------------------------------------------------------------------
    def _run_steepest(
        self,
        clustering: Clustering,
        log: EvolutionLog | None,
        scope: set[int] | None,
    ) -> None:
        for _ in range(self.max_passes * max(len(clustering.graph), 1)):
            best = self._best_change(clustering, scope)
            if best is None:
                break
            kind, payload, _delta = best
            if kind == "merge":
                cid_a, cid_b = payload
                if log is not None:
                    log.record_merge(clustering.members(cid_a), clustering.members(cid_b))
                self.objective.apply_merge(clustering, cid_a, cid_b)
            else:
                cid, part = payload
                if log is not None:
                    log.record_split(clustering.members(cid), frozenset(part))
                self.objective.apply_split(clustering, cid, part)

    def _best_change(self, clustering: Clustering, scope: set[int] | None):
        best_delta = -self.tolerance
        best = None
        seen_pairs: set[tuple[int, int]] = set()
        for cid in clustering.cluster_ids():
            if not self._in_scope(clustering, cid, scope):
                continue
            for other in clustering.neighbor_clusters(cid):
                pair = (min(cid, other), max(cid, other))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                if scope is not None and not self._in_scope(clustering, other, scope):
                    continue
                delta = self.objective.delta_merge(clustering, cid, other)
                if delta < best_delta:
                    best_delta = delta
                    best = ("merge", pair, delta)
            for obj_id in self._weakest_members(clustering, cid):
                delta = self.objective.delta_split(clustering, cid, {obj_id})
                if delta < best_delta:
                    best_delta = delta
                    best = ("split", (cid, frozenset({obj_id})), delta)
        return best
