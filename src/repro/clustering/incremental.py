"""Common interface for incremental (dynamic) clustering methods.

The experiment drivers treat Naive, Greedy and DynamicC uniformly: each
owns a similarity graph and a current clustering, and consumes rounds
of data operations (Add / Remove / Update, §3.1). Graph maintenance and
the paper's *initial processing* (§6.1 — new and updated objects start
as singleton clusters, removals leave their cluster) are shared here;
concrete methods implement :meth:`_recluster`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Mapping

from repro.clustering.state import Clustering
from repro.obs.telemetry import NULL_TELEMETRY
from repro.similarity.graph import SimilarityGraph


class IncrementalClusterer(ABC):
    """A dynamic clustering method consuming rounds of data operations."""

    name: str = "incremental"

    #: Observability recorder; the zero-cost no-op by default. The
    #: service layer (:class:`repro.stream.shard.StreamShard`) replaces
    #: it so engine round phases trace under the owning shard's spans.
    obs = NULL_TELEMETRY

    def __init__(self, graph: SimilarityGraph) -> None:
        self.graph = graph
        self.clustering: Clustering = Clustering(graph)

    # ------------------------------------------------------------------
    def bootstrap(self, clustering: Clustering) -> None:
        """Adopt a starting clustering (e.g. a batch result or the
        previous round's output under the GreedySet/DynamicSet modes)."""
        if clustering.graph is not self.graph:
            raise ValueError("clustering must be defined over this method's graph")
        self.clustering = clustering

    def apply_round(
        self,
        added: Mapping[int, Any] | None = None,
        removed: Iterable[int] | None = None,
        updated: Mapping[int, Any] | None = None,
    ) -> Clustering:
        """Apply one round of operations and re-cluster.

        Returns the new clustering (also kept as :attr:`clustering`).
        """
        self.ingest(added, removed, updated)
        return self.recluster()

    def ingest(
        self,
        added: Mapping[int, Any] | None = None,
        removed: Iterable[int] | None = None,
        updated: Mapping[int, Any] | None = None,
    ) -> set[int]:
        """Apply the data operations only (graph + initial processing).

        Separated from :meth:`recluster` so benchmarks can time
        re-clustering without the similarity-graph maintenance that is
        identical across all methods (batch included).
        """
        self._pending_changed = self._ingest(added or {}, removed or (), updated or {})
        return self._pending_changed

    def recluster(self) -> Clustering:
        """Restructure the clustering for the last ingested operations."""
        changed = getattr(self, "_pending_changed", set())
        self._pending_changed = set()
        self._recluster(changed)
        return self.clustering

    # ------------------------------------------------------------------
    def _ingest(
        self,
        added: Mapping[int, Any],
        removed: Iterable[int],
        updated: Mapping[int, Any],
    ) -> set[int]:
        """Apply data operations to graph + clustering (§6.1).

        Returns the set of object ids whose similarity relations changed
        (added and updated objects; removed ids are gone and excluded).
        """
        obs = self.obs
        if obs.enabled:
            with obs.span(
                "engine.maintain",
                added=len(added),
                updated=len(updated),
            ):
                return self._ingest_inner(added, removed, updated)
        return self._ingest_inner(added, removed, updated)

    def _ingest_inner(
        self,
        added: Mapping[int, Any],
        removed: Iterable[int],
        updated: Mapping[int, Any],
    ) -> set[int]:
        """Graph maintenance proper (see :meth:`_ingest`)."""
        changed: set[int] = set()
        # Removals first: their edges must still exist while the cluster
        # statistics are updated.
        for obj_id in removed:
            if obj_id in self.clustering:
                self.clustering.remove_object(obj_id)
            self.graph.remove_object(obj_id)
        # Updates: remove + re-add under the same id (§6.1). A
        # payload-identical update is a graph no-op but still re-enters
        # initial processing (the singleton reset is the §6.1 contract).
        for obj_id, payload in updated.items():
            if obj_id in self.clustering:
                self.clustering.remove_object(obj_id)
            self.graph.update_object(obj_id, payload)
            self._place_new_object(obj_id)
            changed.add(obj_id)
        # Additions: the whole round enters the graph through the batched
        # path (payloads prepared once, one version bump), then each new
        # object gets its initial singleton placement.
        self.graph.add_objects(added)
        for obj_id in added:
            self._place_new_object(obj_id)
            changed.add(obj_id)
        return changed

    def _place_new_object(self, obj_id: int) -> None:
        """Initial placement of a new/updated object (default: singleton)."""
        self.clustering.add_singleton(obj_id)

    # ------------------------------------------------------------------
    @abstractmethod
    def _recluster(self, changed: set[int]) -> None:
        """Restructure :attr:`clustering` in reaction to the changes."""
