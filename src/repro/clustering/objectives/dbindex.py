"""Davies–Bouldin index objective, adapted to similarity space.

DB-index [18] was defined for Euclidean space; Gruenheid et al. [26]
adapt it to record linkage by re-defining scatter and separation over
pairwise record similarities. We follow that adaptation:

* scatter   ``σ_i = (1 − avg-intra-similarity(C_i)) + base_scatter``. The
  additive ``base_scatter`` regularises the degenerate all-singleton
  clustering: with the textbook definition every singleton has σ = 0,
  making DB = 0 the global optimum at all-singletons — useless for
  record linkage. A small positive base scatter restores the intended
  behaviour (nearby clusters produce large R terms until merged),
* distance  ``d_ij = 1 − avg-cross-similarity(C_i, C_j)`` (floored at ε),
* per-cluster term ``R_i = max over *neighbour* clusters j of (σ_i + σ_j) / d_ij``
  (clusters sharing no stored edge have distance 1 and are never the
  binding constraint; a cluster with no neighbours gets ``R_i = σ_i``),
* objective ``F = Σ_i R_i`` — the *aggregate* DB index, minimised.

The textbook index is the mean ``(1/k) Σ R_i`` (exposed as
:meth:`DBIndexObjective.db_mean`); the *sum* is what local search needs:
under the mean, merging two clusters whose R terms sit below the current
mean raises the score even when the merged cluster is strictly better,
so greedy assembly of duplicate groups stalls at fragmented local
optima. The paper's own Fig. 6 plots DB "objective scores" that grow
with the number of objects, which is the signature of the aggregate
form (a mean would stay O(1)).

The paper stresses DB-index "has no special properties for
optimizing" [26], i.e. no locality/monotonicity shortcuts exist for
incremental algorithms — which is exactly why it is the stress-test
workload for DynamicC. Evaluating it naively is O(k·neighbours) per
query, so this implementation keeps per-cluster caches — R terms with
their binding partner, plus scatter σ and size — keyed on the
clustering's version counter and updated *exactly* on
merges/splits/moves: a change only touches R_j for clusters adjacent to
the touched clusters whose binding partner was touched, plus the new
clusters themselves. Delta queries read σ and sizes straight from the
caches (profiling shows recomputing scatter per neighbour per query
dominated the whole serving hot path before these caches existed).
"""

from __future__ import annotations

from typing import Iterable

from repro.clustering.state import Clustering

from .base import ObjectiveFunction

_EPS = 1e-3


class DBIndexObjective(ObjectiveFunction):
    """Similarity-space Davies–Bouldin index (lower is better)."""

    name = "db-index"

    #: A delta reads the cached R terms of the touched clusters'
    #: neighbours, and those terms look one further hop out — so an
    #: applied change can shift deltas two adjacency hops away.
    delta_horizon = 2

    def __init__(self, distance_floor: float = _EPS, base_scatter: float = 0.05) -> None:
        if base_scatter <= 0:
            raise ValueError("base_scatter must be positive (see module docstring)")
        self.distance_floor = distance_floor
        self.base_scatter = base_scatter
        self._cached_clustering: Clustering | None = None
        self._cached_version: int = -1
        # cid -> (R term, binding partner cid or None)
        self._terms: dict[int, tuple[float, int | None]] = {}
        # cid -> scatter σ_i, cid -> |C_i|; maintained alongside _terms
        # so delta queries never recompute per-cluster statistics.
        self._sigmas: dict[int, float] = {}
        self._sizes: dict[int, int] = {}
        self._total: float = 0.0

    # ------------------------------------------------------------------
    # Scatter / distance primitives
    # ------------------------------------------------------------------
    def _scatter(self, clustering: Clustering, cid: int) -> float:
        return (1.0 - clustering.average_intra_similarity(cid)) + self.base_scatter

    def _sigma_from(self, intra_weight: float, size: int) -> float:
        """Scatter of a hypothetical cluster from its raw statistics."""
        pairs = size * (size - 1) // 2
        avg = intra_weight / pairs if pairs else 1.0
        return (1.0 - avg) + self.base_scatter

    def _term(self, clustering: Clustering, cid: int) -> tuple[float, int | None]:
        """R_i and its binding partner, from the σ/size caches."""
        sigmas = self._sigmas
        sizes = self._sizes
        sigma = sigmas[cid]
        size = sizes[cid]
        floor = self.distance_floor
        best = sigma
        best_partner: int | None = None
        for other, cross in clustering.neighbor_clusters(cid).items():
            d = 1.0 - cross / (size * sizes[other])
            if d < floor:
                d = floor
            ratio = (sigma + sigmas[other]) / d
            if ratio > best:
                best = ratio
                best_partner = other
        return best, best_partner

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def _refresh(self, clustering: Clustering) -> None:
        if (
            self._cached_clustering is clustering
            and self._cached_version == clustering.version
        ):
            return
        self._sigmas = {
            cid: self._scatter(clustering, cid) for cid in clustering.cluster_ids()
        }
        self._sizes = {cid: clustering.size(cid) for cid in clustering.cluster_ids()}
        self._terms = {
            cid: self._term(clustering, cid) for cid in clustering.cluster_ids()
        }
        self._total = sum(term for term, _ in self._terms.values())
        self._cached_clustering = clustering
        self._cached_version = clustering.version

    def invalidate(self) -> None:
        """Drop the cache (next query recomputes from scratch)."""
        self._cached_clustering = None
        self._cached_version = -1
        self._terms = {}
        self._sigmas = {}
        self._sizes = {}
        self._total = 0.0

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, clustering: Clustering) -> float:
        """Aggregate DB index ``Σ_i R_i`` (lower is better)."""
        if clustering.num_clusters() == 0:
            return 0.0
        self._refresh(clustering)
        return self._total

    def db_mean(self, clustering: Clustering) -> float:
        """The classic Davies–Bouldin index ``(1/k) Σ_i R_i``."""
        if clustering.num_clusters() == 0:
            return 0.0
        self._refresh(clustering)
        return self._total / clustering.num_clusters()

    # ------------------------------------------------------------------
    # Exact local deltas
    # ------------------------------------------------------------------
    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        self._refresh(clustering)
        total = self._total
        sigmas = self._sigmas
        sizes = self._sizes
        floor = self.distance_floor

        # Hypothetical merged cluster statistics.
        size_a, size_b = sizes[cid_a], sizes[cid_b]
        size_m = size_a + size_b
        cross_ab = clustering.cross_weight(cid_a, cid_b)
        intra_m = (
            clustering.intra_weight(cid_a) + clustering.intra_weight(cid_b) + cross_ab
        )
        sigma_m = self._sigma_from(intra_m, size_m)

        # Neighbour clusters of the merged cluster, with combined cross weight.
        nbrs: dict[int, float] = {}
        for source in (cid_a, cid_b):
            for other, cross in clustering.neighbor_clusters(source).items():
                if other not in (cid_a, cid_b):
                    nbrs[other] = nbrs.get(other, 0.0) + cross

        # R term of the merged cluster.
        r_m = sigma_m
        for other, cross in nbrs.items():
            d = 1.0 - cross / (size_m * sizes[other])
            if d < floor:
                d = floor
            ratio = (sigma_m + sigmas[other]) / d
            if ratio > r_m:
                r_m = ratio

        new_total = total - self._terms[cid_a][0] - self._terms[cid_b][0] + r_m

        # Update affected neighbours.
        for other, cross in nbrs.items():
            old_r, old_partner = self._terms[other]
            d = 1.0 - cross / (size_m * sizes[other])
            if d < floor:
                d = floor
            ratio_with_m = (sigmas[other] + sigma_m) / d
            if old_partner in (cid_a, cid_b):
                new_r = self._term_excluding(
                    clustering, other, exclude=(cid_a, cid_b)
                )
                new_r = max(new_r, ratio_with_m)
            else:
                new_r = max(old_r, ratio_with_m)
            new_total += new_r - old_r

        return new_total - total

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        """Exact local delta of merging several clusters at once.

        This is the move that dissolves DB-index assembly barriers: a
        group of mutually-similar fragments can be strictly uphill for
        every pairwise merge (the half-merged cluster has high scatter
        *and* close remaining fragments) while the complete merge is a
        large improvement.
        """
        if len(cids) < 2:
            return 0.0
        self._refresh(clustering)
        total = self._total
        sigmas = self._sigmas
        sizes = self._sizes
        floor = self.distance_floor
        group = set(cids)

        size_m = sum(sizes[cid] for cid in group)
        intra_m = sum(clustering.intra_weight(cid) for cid in group)
        nbrs: dict[int, float] = {}
        internal_cross = 0.0
        for cid in group:
            for other, cross in clustering.neighbor_clusters(cid).items():
                if other in group:
                    internal_cross += cross  # each internal pair counted twice
                else:
                    nbrs[other] = nbrs.get(other, 0.0) + cross
        intra_m += internal_cross / 2.0
        sigma_m = self._sigma_from(intra_m, size_m)

        r_m = sigma_m
        for other, cross in nbrs.items():
            d = 1.0 - cross / (size_m * sizes[other])
            if d < floor:
                d = floor
            ratio = (sigma_m + sigmas[other]) / d
            if ratio > r_m:
                r_m = ratio

        new_total = total - sum(self._terms[cid][0] for cid in group) + r_m

        exclude = tuple(group)
        for other, cross in nbrs.items():
            old_r, old_partner = self._terms[other]
            d = 1.0 - cross / (size_m * sizes[other])
            if d < floor:
                d = floor
            ratio_with_m = (sigmas[other] + sigma_m) / d
            if old_partner in group:
                new_r = max(
                    self._term_excluding(clustering, other, exclude=exclude),
                    ratio_with_m,
                )
            else:
                new_r = max(old_r, ratio_with_m)
            new_total += new_r - old_r

        return new_total - total

    def _term_excluding(
        self, clustering: Clustering, cid: int, exclude: tuple[int, ...]
    ) -> float:
        """R term of ``cid`` ignoring candidate partners in ``exclude``."""
        sigmas = self._sigmas
        sizes = self._sizes
        sigma = sigmas[cid]
        size = sizes[cid]
        floor = self.distance_floor
        best = sigma
        for other, cross in clustering.neighbor_clusters(cid).items():
            if other in exclude:
                continue
            d = 1.0 - cross / (size * sizes[other])
            if d < floor:
                d = floor
            ratio = (sigma + sigmas[other]) / d
            if ratio > best:
                best = ratio
        return best

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        self._refresh(clustering)
        part_set = set(part)
        members = clustering.members_view(cid)
        rest = members - part_set
        if not part_set or not rest:
            raise ValueError("part must be a non-empty proper subset")
        total = self._total
        sigmas = self._sigmas
        sizes = self._sizes
        floor = self.distance_floor
        graph = clustering.graph

        # Statistics of the two hypothetical clusters. Only the part
        # side's edges are scanned (typically one object); the rest
        # side's externals come from the cluster's adjacency row.
        intra_part = 0.0
        cross_pr = 0.0
        nbrs_p: dict[int, float] = {}
        for obj_id in part_set:
            for other, sim in graph.neighbors(obj_id).items():
                if other in part_set:
                    if obj_id < other:
                        intra_part += sim
                elif other in members:
                    cross_pr += sim
                else:
                    other_cid = clustering.cluster_of(other)
                    if other_cid is not None and other_cid != cid:
                        nbrs_p[other_cid] = nbrs_p.get(other_cid, 0.0) + sim
        intra_rest = clustering.intra_weight(cid) - intra_part - cross_pr

        sigma_p = self._sigma_from(intra_part, len(part_set))
        sigma_r = self._sigma_from(intra_rest, len(rest))

        nbrs_r: dict[int, float] = {}
        for other_cid, weight in clustering.neighbor_clusters(cid).items():
            remaining = weight - nbrs_p.get(other_cid, 0.0)
            if remaining > 1e-12:
                nbrs_r[other_cid] = remaining

        def ratio(sigma_x, size_x, sigma_y, size_y, cross) -> float:
            d = max(1.0 - cross / (size_x * size_y), floor)
            return (sigma_x + sigma_y) / d

        # R terms of the two new clusters (they also neighbour each other
        # when cross_pr > 0).
        def new_term(sigma_x, size_x, nbrs, sigma_other, size_other, cross_other):
            best = sigma_x
            for other, cross in nbrs.items():
                best = max(
                    best, ratio(sigma_x, size_x, sigmas[other], sizes[other], cross)
                )
            if cross_other > 0.0:
                best = max(
                    best, ratio(sigma_x, size_x, sigma_other, size_other, cross_other)
                )
            return best

        r_p = new_term(sigma_p, len(part_set), nbrs_p, sigma_r, len(rest), cross_pr)
        r_r = new_term(sigma_r, len(rest), nbrs_r, sigma_p, len(part_set), cross_pr)

        new_total = total - self._terms[cid][0] + r_p + r_r

        # Update neighbours of the old cluster.
        for other in set(nbrs_p) | set(nbrs_r):
            old_r, old_partner = self._terms[other]
            sigma_o = sigmas[other]
            size_o = sizes[other]
            candidates = []
            if other in nbrs_p:
                candidates.append(
                    ratio(sigma_o, size_o, sigma_p, len(part_set), nbrs_p[other])
                )
            if other in nbrs_r:
                candidates.append(
                    ratio(sigma_o, size_o, sigma_r, len(rest), nbrs_r[other])
                )
            if old_partner == cid:
                new_r = self._term_excluding(clustering, other, exclude=(cid,))
                new_r = max([new_r] + candidates)
            else:
                new_r = max([old_r] + candidates)
            new_total += new_r - old_r

        return new_total - total

    def delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        """Exact local delta of moving one object to another cluster.

        A move changes the statistics of the source and target clusters
        *and* shifts the object's edges between every adjacent cluster's
        cross weights, so the affected set is: source', target', and
        clusters adjacent to either (or to the object) whose binding
        partner was source/target.
        """
        from_cid = clustering.cluster_of(obj_id)
        if from_cid == to_cid:
            return 0.0
        self._refresh(clustering)
        graph = clustering.graph
        total = self._total
        sigmas = self._sigmas
        sizes = self._sizes
        floor = self.distance_floor
        source = clustering.members_view(from_cid)
        target = clustering.members_view(to_cid)
        size_s, size_t = len(source), len(target)

        # The object's edge weight into source (minus itself), target, others.
        w_r_source = 0.0
        w_r_target = 0.0
        r_out: dict[int, float] = {}
        for other, sim in graph.neighbors(obj_id).items():
            if other in source:
                w_r_source += sim
            elif other in target:
                w_r_target += sim
            elif other in clustering:
                other_cid = clustering.cluster_of(other)
                r_out[other_cid] = r_out.get(other_cid, 0.0) + sim

        size_s_new = size_s - 1
        size_t_new = size_t + 1
        sigma_s_new = (
            self._sigma_from(clustering.intra_weight(from_cid) - w_r_source, size_s_new)
            if size_s_new
            else None
        )
        sigma_t_new = self._sigma_from(
            clustering.intra_weight(to_cid) + w_r_target, size_t_new
        )

        cross_source = clustering.neighbor_clusters(from_cid)
        cross_target = clustering.neighbor_clusters(to_cid)
        c_st_new = cross_source.get(to_cid, 0.0) - w_r_target + w_r_source

        others = (set(cross_source) | set(cross_target) | set(r_out)) - {
            from_cid,
            to_cid,
        }
        new_cross_s: dict[int, float] = {}
        new_cross_t: dict[int, float] = {}
        for other in others:
            cs = cross_source.get(other, 0.0) - r_out.get(other, 0.0)
            ct = cross_target.get(other, 0.0) + r_out.get(other, 0.0)
            if cs > 1e-12:
                new_cross_s[other] = cs
            if ct > 1e-12:
                new_cross_t[other] = ct

        def ratio(sigma_x, size_x, sigma_y, size_y, cross) -> float:
            d = max(1.0 - cross / (size_x * size_y), floor)
            return (sigma_x + sigma_y) / d

        # New term for the shrunken source (when it survives).
        r_s_new = 0.0
        if sigma_s_new is not None:
            r_s_new = sigma_s_new
            for other, cs in new_cross_s.items():
                r_s_new = max(
                    r_s_new,
                    ratio(sigma_s_new, size_s_new, sigmas[other], sizes[other], cs),
                )
            if c_st_new > 1e-12:
                r_s_new = max(
                    r_s_new,
                    ratio(sigma_s_new, size_s_new, sigma_t_new, size_t_new, c_st_new),
                )

        # New term for the grown target.
        r_t_new = sigma_t_new
        for other, ct in new_cross_t.items():
            r_t_new = max(
                r_t_new,
                ratio(sigma_t_new, size_t_new, sigmas[other], sizes[other], ct),
            )
        if sigma_s_new is not None and c_st_new > 1e-12:
            r_t_new = max(
                r_t_new,
                ratio(sigma_t_new, size_t_new, sigma_s_new, size_s_new, c_st_new),
            )

        new_total = (
            total - self._terms[from_cid][0] - self._terms[to_cid][0] + r_s_new + r_t_new
        )

        # Affected third-party clusters.
        for other in others:
            old_r, old_partner = self._terms[other]
            sigma_o = sigmas[other]
            size_o = sizes[other]
            candidates = []
            if other in new_cross_s and sigma_s_new is not None:
                candidates.append(
                    ratio(sigma_o, size_o, sigma_s_new, size_s_new, new_cross_s[other])
                )
            if other in new_cross_t:
                candidates.append(
                    ratio(sigma_o, size_o, sigma_t_new, size_t_new, new_cross_t[other])
                )
            if old_partner in (from_cid, to_cid):
                new_r = self._term_excluding(
                    clustering, other, exclude=(from_cid, to_cid)
                )
                new_r = max([new_r] + candidates)
            else:
                new_r = max([old_r] + candidates)
            new_total += new_r - old_r

        return new_total - total

    # ------------------------------------------------------------------
    # Mutation gateways keeping the cache exact
    # ------------------------------------------------------------------
    def apply_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> int:
        self._refresh(clustering)
        new_cid = clustering.merge(cid_a, cid_b)
        self._rebuild_after_change(clustering, removed=(cid_a, cid_b), added=(new_cid,))
        return new_cid

    def apply_split(
        self, clustering: Clustering, cid: int, part: Iterable[int]
    ) -> tuple[int, int]:
        self._refresh(clustering)
        rest_cid, part_cid = clustering.split(cid, set(part))
        self._rebuild_after_change(
            clustering, removed=(cid,), added=(rest_cid, part_cid)
        )
        return rest_cid, part_cid

    def apply_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> int:
        self._refresh(clustering)
        from_cid = clustering.cluster_of(obj_id)
        result = clustering.move(obj_id, to_cid)
        source_survives = clustering.contains_cluster(from_cid)
        self._rebuild_after_change(
            clustering,
            removed=() if source_survives else (from_cid,),
            added=((from_cid,) if source_survives else ()) + (to_cid,),
            stale_partners=(from_cid, to_cid),
        )
        return result

    def _rebuild_after_change(
        self,
        clustering: Clustering,
        removed: tuple[int, ...],
        added: tuple[int, ...],
        stale_partners: tuple[int, ...] = (),
    ) -> None:
        """Update cached terms after an applied merge/split/move (exact).

        ``stale_partners`` lists surviving cluster ids whose statistics
        changed in place (the source/target of a move): clusters bound
        to them must be refreshed even though the ids still exist.
        """
        for cid in removed:
            term, _ = self._terms.pop(cid)
            self._sigmas.pop(cid, None)
            self._sizes.pop(cid, None)
            self._total -= term

        # σ/size of the new (or in-place-changed) clusters first — the
        # term recomputations below read them from the caches.
        for cid in added:
            self._sigmas[cid] = self._scatter(clustering, cid)
            self._sizes[cid] = clustering.size(cid)

        affected: set[int] = set(added)
        for cid in added:
            affected.update(clustering.neighbor_clusters(cid))
        # Clusters whose binding partner vanished or changed in place
        # must also be refreshed.
        stale = set(removed) | set(stale_partners)
        for cid, (_, partner) in list(self._terms.items()):
            if partner in stale:
                affected.add(cid)

        for cid in affected:
            if cid in self._terms:
                self._total -= self._terms[cid][0]
            term = self._term(clustering, cid)
            self._terms[cid] = term
            self._total += term[0]

        self._cached_version = clustering.version
        self._cached_clustering = clustering
