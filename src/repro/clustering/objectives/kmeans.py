"""k-means objective: within-cluster sum of squares with a fixed-k penalty.

The paper evaluates k-means with a "robust batch algorithm"
(Hill-climbing, §7.1) rather than Lloyd iterations, so the objective
must be expressible as a function of an arbitrary partition. We use

    F = SSE(clustering) + penalty · |#clusters − k|

The penalty makes merges/splits that change the cluster count pay a
large fixed cost, so Hill-climbing and DynamicC only change k in
compensating merge+split pairs — the generic merge/split machinery then
effectively performs *moves*, which is how a fixed-k method evolves.

SSE per cluster follows the standard identity
``Σ‖x−μ‖² = Σ‖x‖² − ‖Σx‖²/n``, evaluated from maintained per-cluster
aggregates ``(n, Σx, Σ‖x‖²)`` — kept exact through the ``apply_*``
mutation gateways and rebuilt from the member vectors only when the
clustering was mutated behind the objective's back. Deltas therefore
cost O(dim) (plus O(|part|·dim) for the split side actually scanned),
never O(cluster size).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.clustering.state import Clustering

from .base import ObjectiveFunction


class KMeansObjective(ObjectiveFunction):
    """SSE + fixed-k penalty objective over vector payloads.

    Parameters
    ----------
    k:
        Target number of clusters.
    vector_of:
        Maps an object id to its numeric vector. Defaults to reading the
        graph payload (which is the convention of the numeric datasets).
    penalty:
        Cost per unit deviation from ``k`` clusters. Must dominate any
        single SSE improvement achievable by splitting; the default is
        calibrated per-workload by the drivers (``penalty="auto"`` uses
        the dataset's total variance).
    """

    name = "kmeans"

    #: The fixed-k penalty reads the global cluster count, so a merge
    #: anywhere shifts every other cluster's split/merge deltas — the
    #: scoped local search must not skip "clean" clusters.
    locality = "global"

    def __init__(
        self,
        k: int,
        vector_of: Callable[[int], np.ndarray] | None = None,
        penalty: float = 1e6,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._vector_of = vector_of
        self.penalty = float(penalty)
        # Per-cluster aggregates cid -> (n, Σx, Σ‖x‖²), exact for the
        # cached (clustering, version) pair.
        self._cached_clustering: Clustering | None = None
        self._cached_version: int = -1
        self._aggs: dict[int, tuple[int, np.ndarray, float]] = {}

    def bind_graph_payloads(self, clustering: Clustering) -> None:
        """Use the clustering's graph payloads as vectors (idempotent)."""
        if self._vector_of is None:
            graph = clustering.graph
            self._vector_of = lambda obj_id: np.asarray(graph.payload(obj_id), dtype=float)

    def _vec(self, obj_id: int) -> np.ndarray:
        if self._vector_of is None:
            raise RuntimeError(
                "KMeansObjective has no vector accessor; pass vector_of or "
                "call bind_graph_payloads() first"
            )
        return self._vector_of(obj_id)

    # ------------------------------------------------------------------
    # Aggregate cache
    # ------------------------------------------------------------------
    def _agg_of(self, member_ids: Iterable[int]) -> tuple[int, np.ndarray, float]:
        vectors = np.array([self._vec(obj_id) for obj_id in member_ids], dtype=float)
        if vectors.size == 0:
            return 0, np.zeros(0), 0.0
        return len(vectors), vectors.sum(axis=0), float(np.sum(vectors * vectors))

    def _refresh(self, clustering: Clustering) -> None:
        if (
            self._cached_clustering is clustering
            and self._cached_version == clustering.version
        ):
            return
        self.bind_graph_payloads(clustering)
        self._aggs = {
            cid: self._agg_of(clustering.members_view(cid))
            for cid in clustering.cluster_ids()
        }
        self._cached_clustering = clustering
        self._cached_version = clustering.version

    def invalidate(self) -> None:
        """Drop the aggregate cache (next query rebuilds from scratch)."""
        self._cached_clustering = None
        self._cached_version = -1
        self._aggs = {}

    @staticmethod
    def _sse_from(n: int, vec_sum: np.ndarray, sq_sum: float) -> float:
        if n <= 1:
            return 0.0
        # Cancellation can leave a tiny negative; SSE is non-negative.
        return max(sq_sum - float(vec_sum @ vec_sum) / n, 0.0)

    # ------------------------------------------------------------------
    def score(self, clustering: Clustering) -> float:
        self._refresh(clustering)
        sse = sum(self._sse_from(*agg) for agg in self._aggs.values())
        return sse + self.penalty * abs(clustering.num_clusters() - self.k)

    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        self._refresh(clustering)
        n_a, s_a, q_a = self._aggs[cid_a]
        n_b, s_b, q_b = self._aggs[cid_b]
        sse_delta = (
            self._sse_from(n_a + n_b, s_a + s_b, q_a + q_b)
            - self._sse_from(n_a, s_a, q_a)
            - self._sse_from(n_b, s_b, q_b)
        )
        k_now = clustering.num_clusters()
        penalty_delta = self.penalty * (abs(k_now - 1 - self.k) - abs(k_now - self.k))
        return sse_delta + penalty_delta

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        if len(cids) < 2:
            return 0.0
        self._refresh(clustering)
        n_m, s_m, q_m = 0, None, 0.0
        sse_parts = 0.0
        for cid in cids:
            n, s, q = self._aggs[cid]
            n_m += n
            s_m = s.copy() if s_m is None else s_m + s
            q_m += q
            sse_parts += self._sse_from(n, s, q)
        sse_delta = self._sse_from(n_m, s_m, q_m) - sse_parts
        k_now = clustering.num_clusters()
        k_after = k_now - (len(cids) - 1)
        penalty_delta = self.penalty * (abs(k_after - self.k) - abs(k_now - self.k))
        return sse_delta + penalty_delta

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        self._refresh(clustering)
        part_set = set(part)
        n_c, s_c, q_c = self._aggs[cid]
        if not part_set or not len(part_set) < n_c:
            raise ValueError("part must be a non-empty proper subset")
        n_p, s_p, q_p = self._agg_of(part_set)
        sse_delta = (
            self._sse_from(n_p, s_p, q_p)
            + self._sse_from(n_c - n_p, s_c - s_p, q_c - q_p)
            - self._sse_from(n_c, s_c, q_c)
        )
        k_now = clustering.num_clusters()
        penalty_delta = self.penalty * (abs(k_now + 1 - self.k) - abs(k_now - self.k))
        return sse_delta + penalty_delta

    def delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        self._refresh(clustering)
        from_cid = clustering.cluster_of(obj_id)
        if from_cid == to_cid:
            return 0.0
        v = np.asarray(self._vec(obj_id), dtype=float)
        q_v = float(v @ v)
        n_s, s_s, q_s = self._aggs[from_cid]
        n_t, s_t, q_t = self._aggs[to_cid]
        delta = 0.0
        delta += self._sse_from(n_s - 1, s_s - v, q_s - q_v) - self._sse_from(n_s, s_s, q_s)
        delta += self._sse_from(n_t + 1, s_t + v, q_t + q_v) - self._sse_from(n_t, s_t, q_t)
        if n_s == 1:  # moving the last member dissolves the cluster
            k_now = clustering.num_clusters()
            delta += self.penalty * (abs(k_now - 1 - self.k) - abs(k_now - self.k))
        return delta

    # ------------------------------------------------------------------
    # Mutation gateways keeping the aggregates exact
    # ------------------------------------------------------------------
    def apply_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> int:
        self._refresh(clustering)
        n_a, s_a, q_a = self._aggs.pop(cid_a)
        n_b, s_b, q_b = self._aggs.pop(cid_b)
        new_cid = clustering.merge(cid_a, cid_b)
        self._aggs[new_cid] = (n_a + n_b, s_a + s_b, q_a + q_b)
        self._cached_version = clustering.version
        return new_cid

    def apply_split(
        self, clustering: Clustering, cid: int, part: Iterable[int]
    ) -> tuple[int, int]:
        self._refresh(clustering)
        part_set = set(part)
        n_c, s_c, q_c = self._aggs.pop(cid)
        n_p, s_p, q_p = self._agg_of(part_set)
        rest_cid, part_cid = clustering.split(cid, part_set)
        self._aggs[rest_cid] = (n_c - n_p, s_c - s_p, q_c - q_p)
        self._aggs[part_cid] = (n_p, s_p, q_p)
        self._cached_version = clustering.version
        return rest_cid, part_cid

    def apply_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> int:
        self._refresh(clustering)
        from_cid = clustering.cluster_of(obj_id)
        result = clustering.move(obj_id, to_cid)
        if from_cid != to_cid:
            v = np.asarray(self._vec(obj_id), dtype=float)
            q_v = float(v @ v)
            n_s, s_s, q_s = self._aggs.pop(from_cid)
            if n_s > 1:
                self._aggs[from_cid] = (n_s - 1, s_s - v, q_s - q_v)
            n_t, s_t, q_t = self._aggs[to_cid]
            self._aggs[to_cid] = (n_t + 1, s_t + v, q_t + q_v)
        self._cached_version = clustering.version
        return result

    # ------------------------------------------------------------------
    def merge_candidates(self, clustering: Clustering, cid: int) -> list[int] | None:
        """Nearest clusters by centroid distance when above the target k.

        Clusters needing to merge under the fixed-k penalty may share no
        similarity edge (distant in the kernel's terms but the two
        cheapest to fuse), so neighbour-only candidate generation would
        strand the search above k.
        """
        if clustering.num_clusters() <= self.k:
            return None
        self._refresh(clustering)
        center = self._centroid(clustering, cid)
        scored = []
        for other in clustering.cluster_ids():
            if other == cid:
                continue
            distance = float(np.linalg.norm(self._centroid(clustering, other) - center))
            scored.append((distance, other))
        scored.sort()
        return [other for _, other in scored[:4]]

    def _centroid(self, clustering: Clustering, cid: int) -> np.ndarray:
        self._refresh(clustering)
        n, s, _ = self._aggs[cid]
        return s / n

    def refinement_moves(self, clustering: Clustering) -> list[tuple[int, int]] | None:
        """Lloyd-style proposals: move objects to their nearest centroid."""
        self._refresh(clustering)
        cids = list(clustering.cluster_ids())
        if len(cids) < 2:
            return []
        centers = np.array([self._aggs[cid][1] / self._aggs[cid][0] for cid in cids])
        obj_ids: list[int] = []
        owner: list[int] = []
        for idx, cid in enumerate(cids):
            for obj_id in clustering.members_view(cid):
                obj_ids.append(obj_id)
                owner.append(idx)
        vectors = np.array([self._vec(obj_id) for obj_id in obj_ids], dtype=float)
        # Squared distances via ‖x‖² − 2x·c + ‖c‖² (the ‖x‖² column is
        # constant per row and irrelevant to the row-wise comparison).
        sq_dist = -2.0 * (vectors @ centers.T) + np.sum(centers * centers, axis=1)
        best = np.argmin(sq_dist, axis=1)
        proposals: list[tuple[int, int]] = []
        for row, obj_id in enumerate(obj_ids):
            idx = owner[row]
            target = int(best[row])
            if target != idx and sq_dist[row, target] < sq_dist[row, idx] - 1e-12:
                proposals.append((obj_id, cids[target]))
        return proposals

    # ------------------------------------------------------------------
    def sse(self, clustering: Clustering) -> float:
        """Raw SSE without the k penalty (reported by Fig. 5(d))."""
        self._refresh(clustering)
        return sum(self._sse_from(*agg) for agg in self._aggs.values())
