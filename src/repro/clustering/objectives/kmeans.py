"""k-means objective: within-cluster sum of squares with a fixed-k penalty.

The paper evaluates k-means with a "robust batch algorithm"
(Hill-climbing, §7.1) rather than Lloyd iterations, so the objective
must be expressible as a function of an arbitrary partition. We use

    F = SSE(clustering) + penalty · |#clusters − k|

The penalty makes merges/splits that change the cluster count pay a
large fixed cost, so Hill-climbing and DynamicC only change k in
compensating merge+split pairs — the generic merge/split machinery then
effectively performs *moves*, which is how a fixed-k method evolves.

SSE per cluster is computed from the member vectors with the standard
identity ``Σ‖x−μ‖² = Σ‖x‖² − ‖Σx‖²/n``, so deltas cost O(|A|+|B|).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.clustering.state import Clustering

from .base import ObjectiveFunction


class KMeansObjective(ObjectiveFunction):
    """SSE + fixed-k penalty objective over vector payloads.

    Parameters
    ----------
    k:
        Target number of clusters.
    vector_of:
        Maps an object id to its numeric vector. Defaults to reading the
        graph payload (which is the convention of the numeric datasets).
    penalty:
        Cost per unit deviation from ``k`` clusters. Must dominate any
        single SSE improvement achievable by splitting; the default is
        calibrated per-workload by the drivers (``penalty="auto"`` uses
        the dataset's total variance).
    """

    name = "kmeans"

    def __init__(
        self,
        k: int,
        vector_of: Callable[[int], np.ndarray] | None = None,
        penalty: float = 1e6,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._vector_of = vector_of
        self.penalty = float(penalty)

    def bind_graph_payloads(self, clustering: Clustering) -> None:
        """Use the clustering's graph payloads as vectors (idempotent)."""
        if self._vector_of is None:
            graph = clustering.graph
            self._vector_of = lambda obj_id: np.asarray(graph.payload(obj_id), dtype=float)

    def _vec(self, obj_id: int) -> np.ndarray:
        if self._vector_of is None:
            raise RuntimeError(
                "KMeansObjective has no vector accessor; pass vector_of or "
                "call bind_graph_payloads() first"
            )
        return self._vector_of(obj_id)

    # ------------------------------------------------------------------
    def _sse(self, member_ids: Iterable[int]) -> float:
        ids = list(member_ids)
        if len(ids) <= 1:
            return 0.0
        vectors = np.array([self._vec(obj_id) for obj_id in ids], dtype=float)
        sq_sum = float(np.sum(vectors * vectors))
        vec_sum = vectors.sum(axis=0)
        return sq_sum - float(vec_sum @ vec_sum) / len(ids)

    def score(self, clustering: Clustering) -> float:
        self.bind_graph_payloads(clustering)
        sse = sum(
            self._sse(clustering.members_view(cid)) for cid in clustering.cluster_ids()
        )
        return sse + self.penalty * abs(clustering.num_clusters() - self.k)

    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        self.bind_graph_payloads(clustering)
        members_a = clustering.members_view(cid_a)
        members_b = clustering.members_view(cid_b)
        sse_delta = (
            self._sse(list(members_a) + list(members_b))
            - self._sse(members_a)
            - self._sse(members_b)
        )
        k_now = clustering.num_clusters()
        penalty_delta = self.penalty * (abs(k_now - 1 - self.k) - abs(k_now - self.k))
        return sse_delta + penalty_delta

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        if len(cids) < 2:
            return 0.0
        self.bind_graph_payloads(clustering)
        union: list[int] = []
        sse_parts = 0.0
        for cid in cids:
            members = clustering.members_view(cid)
            union.extend(members)
            sse_parts += self._sse(members)
        sse_delta = self._sse(union) - sse_parts
        k_now = clustering.num_clusters()
        k_after = k_now - (len(cids) - 1)
        penalty_delta = self.penalty * (abs(k_after - self.k) - abs(k_now - self.k))
        return sse_delta + penalty_delta

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        self.bind_graph_payloads(clustering)
        part_set = set(part)
        members = clustering.members_view(cid)
        rest = members - part_set
        if not rest or not part_set:
            raise ValueError("part must be a non-empty proper subset")
        sse_delta = self._sse(part_set) + self._sse(rest) - self._sse(members)
        k_now = clustering.num_clusters()
        penalty_delta = self.penalty * (abs(k_now + 1 - self.k) - abs(k_now - self.k))
        return sse_delta + penalty_delta

    def delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        self.bind_graph_payloads(clustering)
        from_cid = clustering.cluster_of(obj_id)
        if from_cid == to_cid:
            return 0.0
        source = clustering.members_view(from_cid)
        target = clustering.members_view(to_cid)
        delta = 0.0
        delta += self._sse(source - {obj_id}) - self._sse(source)
        delta += self._sse(set(target) | {obj_id}) - self._sse(target)
        if len(source) == 1:  # moving the last member dissolves the cluster
            k_now = clustering.num_clusters()
            delta += self.penalty * (abs(k_now - 1 - self.k) - abs(k_now - self.k))
        return delta

    def merge_candidates(self, clustering: Clustering, cid: int) -> list[int] | None:
        """Nearest clusters by centroid distance when above the target k.

        Clusters needing to merge under the fixed-k penalty may share no
        similarity edge (distant in the kernel's terms but the two
        cheapest to fuse), so neighbour-only candidate generation would
        strand the search above k.
        """
        if clustering.num_clusters() <= self.k:
            return None
        self.bind_graph_payloads(clustering)
        center = self._centroid(clustering, cid)
        scored = []
        for other in clustering.cluster_ids():
            if other == cid:
                continue
            distance = float(np.linalg.norm(self._centroid(clustering, other) - center))
            scored.append((distance, other))
        scored.sort()
        return [other for _, other in scored[:4]]

    def _centroid(self, clustering: Clustering, cid: int) -> np.ndarray:
        members = clustering.members_view(cid)
        return np.mean([self._vec(obj_id) for obj_id in members], axis=0)

    def refinement_moves(self, clustering: Clustering) -> list[tuple[int, int]] | None:
        """Lloyd-style proposals: move objects to their nearest centroid."""
        self.bind_graph_payloads(clustering)
        cids = list(clustering.cluster_ids())
        if len(cids) < 2:
            return []
        centers = np.array([self._centroid(clustering, cid) for cid in cids])
        proposals: list[tuple[int, int]] = []
        for idx, cid in enumerate(cids):
            for obj_id in clustering.members_view(cid):
                vec = self._vec(obj_id)
                distances = np.linalg.norm(centers - vec, axis=1)
                best = int(np.argmin(distances))
                if best != idx and distances[best] < distances[idx] - 1e-12:
                    proposals.append((obj_id, cids[best]))
        return proposals

    # ------------------------------------------------------------------
    def sse(self, clustering: Clustering) -> float:
        """Raw SSE without the k penalty (reported by Fig. 5(d))."""
        self.bind_graph_payloads(clustering)
        return sum(
            self._sse(clustering.members_view(cid)) for cid in clustering.cluster_ids()
        )
