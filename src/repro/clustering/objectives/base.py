"""Objective function interface (lower score = better clustering).

The paper's heuristics (Alg. 1/2) *verify* every predicted change by
checking whether the objective score improves (§5.4 "Avoiding False
Positives"), and the batch Hill-climbing algorithm greedily applies the
best-improving change. Both only need two queries —

* ``delta_merge(clustering, a, b)``: score change if clusters a and b merged;
* ``delta_split(clustering, cid, part)``: score change if ``part`` split out —

plus mutation gateways ``apply_merge`` / ``apply_split`` so stateful
objectives (DB-index keeps a per-cluster term cache) can update
incrementally instead of re-scoring from scratch.

The base class supplies exact-but-slow defaults (copy, mutate, score),
which concrete objectives override with local-delta formulas.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.clustering.state import Clustering


class ObjectiveFunction(ABC):
    """A clustering quality score to *minimize*."""

    name: str = "objective"

    @abstractmethod
    def score(self, clustering: Clustering) -> float:
        """Full score of a clustering (lower is better)."""

    # ------------------------------------------------------------------
    # Hypothetical-change queries
    # ------------------------------------------------------------------
    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        """Score change if ``cid_a`` and ``cid_b`` were merged (negative = improvement)."""
        trial = clustering.copy()
        before = self.score(trial)
        trial.merge(cid_a, cid_b)
        return self.score(trial) - before

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        """Score change if ``part`` were split out of ``cid``."""
        trial = clustering.copy()
        before = self.score(trial)
        trial.split(cid, set(part))
        return self.score(trial) - before

    def delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        """Score change if ``obj_id`` moved to cluster ``to_cid``."""
        trial = clustering.copy()
        before = self.score(trial)
        trial.move(obj_id, to_cid)
        return self.score(trial) - before

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        """Score change if all of ``cids`` were merged into one cluster.

        Group merges matter because several objectives (DB-index most of
        all) have *assembly barriers*: merging a group of k mutually
        similar clusters improves the score even though every pairwise
        merge along the way is uphill — a pairwise-only local search
        stalls on fragmented optima. The default simulates on a copy;
        concrete objectives override with exact local computations.
        """
        if len(cids) < 2:
            return 0.0
        trial = clustering.copy()
        before = self.score(trial)
        current = cids[0]
        for cid in cids[1:]:
            current = trial.merge(current, cid)
        return self.score(trial) - before

    # ------------------------------------------------------------------
    # Mutation gateways (overridden by stateful objectives)
    # ------------------------------------------------------------------
    def apply_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> int:
        """Merge and keep any internal caches consistent; returns new cid."""
        return clustering.merge(cid_a, cid_b)

    def apply_split(
        self, clustering: Clustering, cid: int, part: Iterable[int]
    ) -> tuple[int, int]:
        """Split and keep any internal caches consistent."""
        return clustering.split(cid, set(part))

    def apply_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> int:
        """Move one object; returns its new cluster id."""
        return clustering.move(obj_id, to_cid)

    def apply_merge_group(self, clustering: Clustering, cids: list[int]) -> int:
        """Merge all of ``cids`` into one cluster; returns the final cid."""
        if len(cids) < 2:
            raise ValueError("group merge needs at least two clusters")
        current = cids[0]
        for cid in cids[1:]:
            current = self.apply_merge(clustering, current, cid)
        return current

    # ------------------------------------------------------------------
    def merge_candidates(self, clustering: Clustering, cid: int) -> list[int] | None:
        """Extra merge partners beyond similarity-graph neighbours.

        ``None`` (default) means "neighbour clusters only", which is
        right for similarity-driven objectives: merging clusters with
        zero cross weight can never improve them. Objectives with
        global coupling override this — the fixed-k k-means objective
        must be able to merge clusters that share no edge when the
        cluster count exceeds k.
        """
        return None

    def refinement_moves(self, clustering: Clustering) -> list[tuple[int, int]] | None:
        """Proposed (object, target-cluster) moves for the refinement pass.

        ``None`` (default) lets the search fall back to its generic
        weakest-member heuristics. Objectives with cheap global
        knowledge override this — k-means proposes Lloyd-style nearest-
        centroid reassignments. Every proposal is still verified with
        ``delta_move`` before being applied.
        """
        return None

    def improves(self, delta: float, tolerance: float = 1e-9) -> bool:
        """True when a delta strictly improves (decreases) the score."""
        return delta < -tolerance
