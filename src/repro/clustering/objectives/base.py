"""Objective function interface (lower score = better clustering).

The paper's heuristics (Alg. 1/2) *verify* every predicted change by
checking whether the objective score improves (§5.4 "Avoiding False
Positives"), and the batch Hill-climbing algorithm greedily applies the
best-improving change. Both only need two queries —

* ``delta_merge(clustering, a, b)``: score change if clusters a and b merged;
* ``delta_split(clustering, cid, part)``: score change if ``part`` split out —

plus mutation gateways ``apply_merge`` / ``apply_split`` so stateful
objectives (DB-index keeps a per-cluster term cache) can update
incrementally instead of re-scoring from scratch.

All three shipped objectives override the ``delta_*`` queries with
O(neighbourhood) incremental formulas backed by per-cluster aggregates
(sizes and intra-edge sums live on :class:`Clustering`; vector sums and
DB-index term/scatter caches live on the objectives and are kept exact
through the ``apply_*`` gateways). The copy-mutate-rescore versions
remain available as ``exact_delta_*`` — the oracle the property tests
compare every incremental formula against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.clustering.state import Clustering


class ObjectiveFunction(ABC):
    """A clustering quality score to *minimize*."""

    name: str = "objective"

    #: ``"local"`` promises every ``delta_*`` query depends only on the
    #: similarity-graph neighbourhood of the touched clusters, so a
    #: local search may skip clusters whose neighbourhood is unchanged
    #: (the scoped greedy passes of
    #: :class:`~repro.clustering.batch.hill_climbing.HillClimbing`).
    #: ``"global"`` disables that scoping — the fixed-k k-means penalty
    #: couples every cluster through the cluster count.
    locality: str = "local"

    #: How many adjacency hops an applied change can shift another
    #: cluster's deltas through. 1 for objectives reading only direct
    #: neighbour statistics; DB-index needs 2 because a delta reads the
    #: cached R *terms* of neighbours, which themselves look one hop out.
    delta_horizon: int = 1

    @abstractmethod
    def score(self, clustering: Clustering) -> float:
        """Full score of a clustering (lower is better)."""

    # ------------------------------------------------------------------
    # Exact oracles (copy, mutate, rescore)
    # ------------------------------------------------------------------
    def exact_delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        """Copy-mutate-rescore merge delta — the incremental formulas' oracle."""
        trial = clustering.copy()
        before = self.score(trial)
        trial.merge(cid_a, cid_b)
        return self.score(trial) - before

    def exact_delta_split(
        self, clustering: Clustering, cid: int, part: Iterable[int]
    ) -> float:
        """Copy-mutate-rescore split delta."""
        trial = clustering.copy()
        before = self.score(trial)
        trial.split(cid, set(part))
        return self.score(trial) - before

    def exact_delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        """Copy-mutate-rescore move delta."""
        trial = clustering.copy()
        before = self.score(trial)
        trial.move(obj_id, to_cid)
        return self.score(trial) - before

    def exact_delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        """Copy-mutate-rescore group-merge delta."""
        if len(cids) < 2:
            return 0.0
        trial = clustering.copy()
        before = self.score(trial)
        current = cids[0]
        for cid in cids[1:]:
            current = trial.merge(current, cid)
        return self.score(trial) - before

    # ------------------------------------------------------------------
    # Hypothetical-change queries
    # ------------------------------------------------------------------
    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        """Score change if ``cid_a`` and ``cid_b`` were merged (negative = improvement)."""
        return self.exact_delta_merge(clustering, cid_a, cid_b)

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        """Score change if ``part`` were split out of ``cid``."""
        return self.exact_delta_split(clustering, cid, part)

    def delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        """Score change if ``obj_id`` moved to cluster ``to_cid``."""
        return self.exact_delta_move(clustering, obj_id, to_cid)

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        """Score change if all of ``cids`` were merged into one cluster.

        Group merges matter because several objectives (DB-index most of
        all) have *assembly barriers*: merging a group of k mutually
        similar clusters improves the score even though every pairwise
        merge along the way is uphill — a pairwise-only local search
        stalls on fragmented optima. The default simulates on a copy;
        concrete objectives override with exact local computations.
        """
        return self.exact_delta_merge_group(clustering, cids)

    # ------------------------------------------------------------------
    # Mutation gateways (overridden by stateful objectives)
    # ------------------------------------------------------------------
    def apply_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> int:
        """Merge and keep any internal caches consistent; returns new cid."""
        return clustering.merge(cid_a, cid_b)

    def apply_split(
        self, clustering: Clustering, cid: int, part: Iterable[int]
    ) -> tuple[int, int]:
        """Split and keep any internal caches consistent."""
        return clustering.split(cid, set(part))

    def apply_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> int:
        """Move one object; returns its new cluster id."""
        return clustering.move(obj_id, to_cid)

    def apply_merge_group(self, clustering: Clustering, cids: list[int]) -> int:
        """Merge all of ``cids`` into one cluster; returns the final cid."""
        if len(cids) < 2:
            raise ValueError("group merge needs at least two clusters")
        current = cids[0]
        for cid in cids[1:]:
            current = self.apply_merge(clustering, current, cid)
        return current

    # ------------------------------------------------------------------
    def merge_candidates(self, clustering: Clustering, cid: int) -> list[int] | None:
        """Extra merge partners beyond similarity-graph neighbours.

        ``None`` (default) means "neighbour clusters only", which is
        right for similarity-driven objectives: merging clusters with
        zero cross weight can never improve them. Objectives with
        global coupling override this — the fixed-k k-means objective
        must be able to merge clusters that share no edge when the
        cluster count exceeds k.
        """
        return None

    def refinement_moves(self, clustering: Clustering) -> list[tuple[int, int]] | None:
        """Proposed (object, target-cluster) moves for the refinement pass.

        ``None`` (default) lets the search fall back to its generic
        weakest-member heuristics. Objectives with cheap global
        knowledge override this — k-means proposes Lloyd-style nearest-
        centroid reassignments. Every proposal is still verified with
        ``delta_move`` before being applied.
        """
        return None

    def improves(self, delta: float, tolerance: float = 1e-9) -> bool:
        """True when a delta strictly improves (decreases) the score."""
        return delta < -tolerance
