"""Objective functions for objective-based clustering (§3.2)."""

from .base import ObjectiveFunction
from .correlation import CorrelationObjective
from .dbindex import DBIndexObjective
from .kmeans import KMeansObjective

__all__ = [
    "CorrelationObjective",
    "DBIndexObjective",
    "KMeansObjective",
    "ObjectiveFunction",
]
