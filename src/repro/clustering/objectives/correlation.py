"""Correlation clustering objective (Eq. 1 of the paper).

Interpreted per-pair, which matches the paper's own arithmetic in
Example 4.1: every same-cluster pair costs ``1 - sim`` and every
cross-cluster pair costs ``sim`` (pairs without a stored edge have
``sim = 0``). With per-cluster running sums the full score is

    F = Σ_C [pairs(C) − S_intra(C)]  +  (W_total − Σ_C S_intra(C))

where ``pairs(C) = |C|(|C|−1)/2`` and ``W_total`` is the total stored
edge weight of the graph — all O(#clusters) to evaluate and O(edges
touched) to delta.
"""

from __future__ import annotations

from typing import Iterable

from repro.clustering.state import Clustering

from .base import ObjectiveFunction


class CorrelationObjective(ObjectiveFunction):
    """Minimise intra-cluster disagreement plus inter-cluster agreement."""

    name = "correlation"

    # Every delta reads only sizes, intra sums and cross weights of the
    # touched clusters — one adjacency hop, so the scoped local search
    # may skip clusters whose direct neighbourhood is unchanged.
    locality = "local"
    delta_horizon = 1

    def score(self, clustering: Clustering) -> float:
        intra_pairs = 0
        intra_weight = 0.0
        for cid in clustering.cluster_ids():
            intra_pairs += clustering.pair_count(cid)
            intra_weight += clustering.intra_weight(cid)
        total_weight = clustering.graph.total_weight
        return (intra_pairs - intra_weight) + (total_weight - intra_weight)

    def delta_merge(self, clustering: Clustering, cid_a: int, cid_b: int) -> float:
        # Merging converts |A||B| cross pairs (cost: sim each) into intra
        # pairs (cost: 1 - sim each): Δ = |A||B| − 2 · cross_weight.
        size_a = clustering.size(cid_a)
        size_b = clustering.size(cid_b)
        cross = clustering.cross_weight(cid_a, cid_b)
        return size_a * size_b - 2.0 * cross

    def delta_split(self, clustering: Clustering, cid: int, part: Iterable[int]) -> float:
        # Exactly the reverse of a merge of (part, rest).
        part_set = set(part)
        size_part = len(part_set)
        size_rest = clustering.size(cid) - size_part
        if size_rest <= 0:
            raise ValueError("part must be a proper subset")
        members = clustering.members_view(cid)
        graph = clustering.graph
        cross = 0.0
        for obj_id in part_set:
            for other, sim in graph.neighbors(obj_id).items():
                if other in members and other not in part_set:
                    cross += sim
        return 2.0 * cross - size_part * size_rest

    def delta_merge_group(self, clustering: Clustering, cids: list[int]) -> float:
        # Additive over the pairs of the group.
        if len(cids) < 2:
            return 0.0
        total = 0.0
        for i, cid_a in enumerate(cids):
            for cid_b in cids[i + 1 :]:
                total += (
                    clustering.size(cid_a) * clustering.size(cid_b)
                    - 2.0 * clustering.cross_weight(cid_a, cid_b)
                )
        return total

    def delta_move(self, clustering: Clustering, obj_id: int, to_cid: int) -> float:
        from_cid = clustering.cluster_of(obj_id)
        if from_cid == to_cid:
            return 0.0
        graph = clustering.graph
        source = clustering.members_view(from_cid)
        target = clustering.members_view(to_cid)
        to_source = 0.0
        to_target = 0.0
        for other, sim in graph.neighbors(obj_id).items():
            if other in source and other != obj_id:
                to_source += sim
            elif other in target:
                to_target += sim
        # Leaving the source: (|S|-1) intra pairs become cross pairs.
        leave = 2.0 * to_source - (len(source) - 1)
        # Joining the target: |T| cross pairs become intra pairs.
        join = len(target) - 2.0 * to_target
        return leave + join
