"""Mutable clustering state with incremental per-cluster statistics.

A :class:`Clustering` is a partition of the objects of a
:class:`~repro.similarity.graph.SimilarityGraph` into clusters. It is
the object every algorithm in the library manipulates: the batch
hill-climber, DBSCAN, the Naive/Greedy baselines, and DynamicC itself.

Two design points matter for performance and for the paper's method:

* **Incremental intra-similarity sums.** Each cluster carries the sum of
  stored edge similarities among its members (``S_intra`` of §3.2),
  updated in O(edges touched) on every merge/split/move. Feature
  extraction (§5.1) and the correlation objective (Eq. 1) read these
  sums instead of recomputing them.
* **Fresh cluster ids.** Merges and splits mint new cluster ids rather
  than reusing inputs, so a cluster id uniquely identifies a cluster
  *value* over time — which is what the evolution log (§4) needs to
  describe history unambiguously.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.similarity.graph import SimilarityGraph


class Clustering:
    """A partition of graph objects with O(1) amortised statistics.

    Parameters
    ----------
    graph:
        The similarity graph the clustering is defined over. Objects are
        added to the clustering explicitly (``add_singleton``); the
        clustering never implicitly pulls objects from the graph.
    """

    #: Weights below this are dropped from the cluster adjacency to keep
    #: it sparse and to absorb floating-point cancellation.
    _ADJ_EPS = 1e-9

    def __init__(self, graph: SimilarityGraph) -> None:
        self.graph = graph
        self._members: dict[int, set[int]] = {}
        self._cluster_of: dict[int, int] = {}
        self._intra: dict[int, float] = {}
        # Cluster-level adjacency: cid -> {neighbour cid -> summed cross
        # similarity}. Maintained incrementally on every mutation so
        # neighbour lookups are O(#neighbour clusters), not O(edges).
        self._adj: dict[int, dict[int, float]] = {}
        self._next_cluster_id = 0
        #: Monotonic counter bumped on every mutation; objective-function
        #: caches key on it.
        self.version = 0

    # ------------------------------------------------------------------
    # Cluster adjacency maintenance helpers
    # ------------------------------------------------------------------
    def _adj_add(self, cid_a: int, cid_b: int, weight: float) -> None:
        """Add cross weight between two live clusters (symmetric)."""
        if weight <= self._ADJ_EPS or cid_a == cid_b:
            return
        row_a = self._adj[cid_a]
        row_b = self._adj[cid_b]
        row_a[cid_b] = row_a.get(cid_b, 0.0) + weight
        row_b[cid_a] = row_b.get(cid_a, 0.0) + weight

    def _adj_sub(self, cid_a: int, cid_b: int, weight: float) -> None:
        """Subtract cross weight between two live clusters (symmetric)."""
        if weight <= self._ADJ_EPS or cid_a == cid_b:
            return
        for row, other in ((self._adj[cid_a], cid_b), (self._adj[cid_b], cid_a)):
            remaining = row.get(other, 0.0) - weight
            if remaining <= self._ADJ_EPS:
                row.pop(other, None)
            else:
                row[other] = remaining

    def _adj_drop_cluster(self, cid: int) -> None:
        """Remove a dissolved cluster from the adjacency."""
        for other in self._adj.pop(cid):
            self._adj[other].pop(cid, None)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def singletons(cls, graph: SimilarityGraph, object_ids: Iterable[int] | None = None) -> "Clustering":
        """Each object in its own cluster (the batch from-scratch start, §4.2)."""
        clustering = cls(graph)
        ids = object_ids if object_ids is not None else graph.object_ids()
        for obj_id in ids:
            clustering.add_singleton(obj_id)
        return clustering

    @classmethod
    def from_groups(cls, graph: SimilarityGraph, groups: Iterable[Iterable[int]]) -> "Clustering":
        """Build a clustering from explicit member groups."""
        clustering = cls(graph)
        for group in groups:
            members = list(group)
            if not members:
                continue
            cid = clustering.add_singleton(members[0])
            for obj_id in members[1:]:
                other = clustering.add_singleton(obj_id)
                cid = clustering.merge(cid, other)
        return clustering

    @classmethod
    def from_labels(cls, graph: SimilarityGraph, labels: dict[int, int]) -> "Clustering":
        """Build from an object-id → label mapping (labels are arbitrary)."""
        groups: dict[int, list[int]] = {}
        for obj_id, label in labels.items():
            groups.setdefault(label, []).append(obj_id)
        return cls.from_groups(graph, groups.values())

    def copy(self) -> "Clustering":
        """Deep copy of the partition (shares the graph reference)."""
        dup = Clustering(self.graph)
        dup._members = {cid: set(members) for cid, members in self._members.items()}
        dup._cluster_of = dict(self._cluster_of)
        dup._intra = dict(self._intra)
        dup._adj = {cid: dict(row) for cid, row in self._adj.items()}
        dup._next_cluster_id = self._next_cluster_id
        dup.version = self.version
        return dup

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def cluster_ids(self) -> Iterator[int]:
        return iter(self._members)

    def members(self, cid: int) -> frozenset[int]:
        return frozenset(self._members[cid])

    def members_view(self, cid: int) -> set[int]:
        """The live member set — do not mutate; cheaper than :meth:`members`."""
        return self._members[cid]

    def cluster_of(self, obj_id: int) -> int:
        return self._cluster_of[obj_id]

    def size(self, cid: int) -> int:
        return len(self._members[cid])

    def intra_weight(self, cid: int) -> float:
        """Sum of stored edge similarities among members (``S_intra``)."""
        return self._intra[cid]

    def pair_count(self, cid: int) -> int:
        """Number of unordered member pairs ``n(n-1)/2``."""
        n = len(self._members[cid])
        return n * (n - 1) // 2

    def average_intra_similarity(self, cid: int) -> float:
        """Average similarity over all member pairs; 1.0 for singletons.

        A singleton has no pairs, so its cohesion is undefined; we define
        it as perfectly cohesive (see DESIGN.md "Singleton features").
        """
        pairs = self.pair_count(cid)
        if pairs == 0:
            return 1.0
        return self._intra[cid] / pairs

    def num_clusters(self) -> int:
        return len(self._members)

    def num_objects(self) -> int:
        return len(self._cluster_of)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._cluster_of

    def contains_cluster(self, cid: int) -> bool:
        return cid in self._members

    def labels(self) -> dict[int, int]:
        """Object-id → cluster-id mapping (a copy)."""
        return dict(self._cluster_of)

    def as_partition(self) -> frozenset[frozenset[int]]:
        """Canonical, hashable form for equality tests and metrics."""
        return frozenset(frozenset(members) for members in self._members.values())

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _new_cluster_id(self) -> int:
        cid = self._next_cluster_id
        self._next_cluster_id += 1
        return cid

    def add_singleton(self, obj_id: int) -> int:
        """Place a (new) object in a cluster by itself; returns the cluster id."""
        if obj_id in self._cluster_of:
            raise KeyError(f"object {obj_id} already clustered")
        cid = self._new_cluster_id()
        self._members[cid] = {obj_id}
        self._cluster_of[obj_id] = cid
        self._intra[cid] = 0.0
        self._adj[cid] = {}
        for other, sim in self.graph.neighbors(obj_id).items():
            other_cid = self._cluster_of.get(other)
            if other_cid is not None and other_cid != cid:
                self._adj_add(cid, other_cid, sim)
        self.version += 1
        return cid

    def remove_object(self, obj_id: int) -> int | None:
        """Drop an object from its cluster.

        Must be called *before* the object is removed from the graph
        (the edge weights are needed to maintain the intra sum).
        Returns the id of the cluster it lived in if that cluster still
        exists afterwards, else ``None``.
        """
        cid = self._cluster_of.pop(obj_id)
        members = self._members[cid]
        members.discard(obj_id)
        removed_intra = 0.0
        for other, sim in self.graph.neighbors(obj_id).items():
            if other in members:
                removed_intra += sim
            else:
                other_cid = self._cluster_of.get(other)
                if other_cid is not None and other_cid != cid:
                    self._adj_sub(cid, other_cid, sim)
        if not members:
            del self._members[cid]
            del self._intra[cid]
            self._adj_drop_cluster(cid)
            self.version += 1
            return None
        self._intra[cid] -= removed_intra
        self.version += 1
        return cid

    def merge(self, cid_a: int, cid_b: int) -> int:
        """Merge two clusters into a freshly-minted cluster id."""
        if cid_a == cid_b:
            raise ValueError("cannot merge a cluster with itself")
        members_a = self._members.pop(cid_a)
        members_b = self._members.pop(cid_b)
        row_a = self._adj.pop(cid_a)
        row_b = self._adj.pop(cid_b)
        cross = row_a.get(cid_b, 0.0)
        new_cid = self._new_cluster_id()
        merged = members_a | members_b
        self._members[new_cid] = merged
        self._intra[new_cid] = self._intra.pop(cid_a) + self._intra.pop(cid_b) + cross
        for obj_id in merged:
            self._cluster_of[obj_id] = new_cid
        # Combine adjacency rows (the mutual entry becomes intra weight).
        combined: dict[int, float] = {}
        for row, partner in ((row_a, cid_b), (row_b, cid_a)):
            for other, weight in row.items():
                if other == partner:
                    continue
                combined[other] = combined.get(other, 0.0) + weight
        self._adj[new_cid] = combined
        for other, weight in combined.items():
            other_row = self._adj[other]
            other_row.pop(cid_a, None)
            other_row.pop(cid_b, None)
            other_row[new_cid] = weight
        self.version += 1
        return new_cid

    def split(self, cid: int, part: Iterable[int]) -> tuple[int, int]:
        """Split ``part`` out of cluster ``cid`` into its own cluster.

        ``part`` must be a non-empty proper subset of the cluster.
        Returns ``(remainder_cid, part_cid)`` — both fresh ids.
        """
        part_set = set(part)
        members = self._members[cid]
        if not part_set or not part_set < members:
            raise ValueError("part must be a non-empty proper subset of the cluster")
        rest = members - part_set
        part_intra = 0.0
        cross = 0.0
        # The part side's external adjacency, computed from its edges.
        part_row: dict[int, float] = {}
        for obj_id in part_set:
            for other, sim in self.graph.neighbors(obj_id).items():
                if other in part_set:
                    if obj_id < other:
                        part_intra += sim
                elif other in rest:
                    cross += sim
                else:
                    other_cid = self._cluster_of.get(other)
                    if other_cid is not None and other_cid != cid:
                        part_row[other_cid] = part_row.get(other_cid, 0.0) + sim
        rest_intra = self._intra[cid] - part_intra - cross

        old_row = self._adj.pop(cid)
        del self._members[cid]
        del self._intra[cid]
        rest_cid = self._new_cluster_id()
        part_cid = self._new_cluster_id()
        self._members[rest_cid] = rest
        self._members[part_cid] = part_set
        self._intra[rest_cid] = max(rest_intra, 0.0)
        self._intra[part_cid] = part_intra
        for obj_id in rest:
            self._cluster_of[obj_id] = rest_cid
        for obj_id in part_set:
            self._cluster_of[obj_id] = part_cid
        # Distribute the old adjacency row between the two halves.
        rest_row: dict[int, float] = {}
        clean_part_row: dict[int, float] = {}
        for other, weight in old_row.items():
            part_weight = part_row.get(other, 0.0)
            rest_weight = weight - part_weight
            other_row = self._adj[other]
            other_row.pop(cid, None)
            if part_weight > self._ADJ_EPS:
                clean_part_row[other] = part_weight
                other_row[part_cid] = part_weight
            if rest_weight > self._ADJ_EPS:
                rest_row[other] = rest_weight
                other_row[rest_cid] = rest_weight
        if cross > self._ADJ_EPS:
            clean_part_row[rest_cid] = cross
            rest_row[part_cid] = cross
        self._adj[part_cid] = clean_part_row
        self._adj[rest_cid] = rest_row
        self.version += 1
        return rest_cid, part_cid

    def move(self, obj_id: int, to_cid: int) -> int:
        """Move one object to another cluster (split+merge composite, §4.1).

        Returns the object's new cluster id. The source cluster keeps its
        id when other members remain, because a move of one object is
        modelled as removing and re-adding that object.
        """
        from_cid = self._cluster_of[obj_id]
        if from_cid == to_cid:
            return to_cid
        target_members = self._members[to_cid]
        source_members = self._members[from_cid]

        # Partition the object's edges: into the source, the target, and
        # third-party clusters.
        detached_weight = 0.0
        attached_weight = 0.0
        third_party: dict[int, float] = {}
        for other, sim in self.graph.neighbors(obj_id).items():
            if other in source_members and other != obj_id:
                detached_weight += sim
            elif other in target_members:
                attached_weight += sim
            else:
                other_cid = self._cluster_of.get(other)
                if other_cid is not None:
                    third_party[other_cid] = third_party.get(other_cid, 0.0) + sim
        source_members.discard(obj_id)
        source_survives = bool(source_members)
        if source_survives:
            self._intra[from_cid] -= detached_weight
            # Source↔target cross: loses the object's target edges, gains
            # its former intra edges.
            self._adj_sub(from_cid, to_cid, attached_weight)
            self._adj_add(from_cid, to_cid, detached_weight)
            for other_cid, weight in third_party.items():
                self._adj_sub(from_cid, other_cid, weight)
        else:
            del self._members[from_cid]
            del self._intra[from_cid]
            self._adj_drop_cluster(from_cid)
        target_members.add(obj_id)
        self._intra[to_cid] += attached_weight
        for other_cid, weight in third_party.items():
            if other_cid != to_cid:
                self._adj_add(to_cid, other_cid, weight)
        self._cluster_of[obj_id] = to_cid
        self.version += 1
        return to_cid

    # ------------------------------------------------------------------
    # Cross-cluster aggregates
    # ------------------------------------------------------------------
    def _cross(self, left: set[int], right: set[int]) -> float:
        total = 0.0
        if len(right) < len(left):
            left, right = right, left
        for obj_id in left:
            for other, sim in self.graph.neighbors(obj_id).items():
                if other in right:
                    total += sim
        return total

    def cross_weight(self, cid_a: int, cid_b: int) -> float:
        """Sum of edge similarities between two clusters (``S_inter``)."""
        if cid_a == cid_b:
            raise ValueError("cross_weight expects distinct clusters")
        if cid_b not in self._members:
            raise KeyError(cid_b)
        return self._adj[cid_a].get(cid_b, 0.0)

    def average_cross_similarity(self, cid_a: int, cid_b: int) -> float:
        """Average similarity over all cross pairs of two clusters."""
        denom = len(self._members[cid_a]) * len(self._members[cid_b])
        return self.cross_weight(cid_a, cid_b) / denom

    def neighbor_clusters(self, cid: int) -> dict[int, float]:
        """Clusters sharing at least one stored edge with ``cid``.

        Returns the *live* mapping neighbour-cluster-id → summed cross
        similarity (maintained incrementally; do not mutate).
        """
        return self._adj[cid]

    def total_intra_weight(self) -> float:
        """Sum of ``S_intra`` over all clusters."""
        return sum(self._intra.values())

    def check_invariants(self) -> None:
        """Raise AssertionError if internal bookkeeping drifted (test hook)."""
        seen: set[int] = set()
        for cid, members in self._members.items():
            assert members, f"cluster {cid} is empty"
            assert not (members & seen), "clusters overlap"
            seen |= members
            for obj_id in members:
                assert self._cluster_of[obj_id] == cid
            expected = self.graph.intra_weight(members)
            assert abs(self._intra[cid] - expected) < 1e-6, (
                f"intra weight drift on cluster {cid}: "
                f"{self._intra[cid]} != {expected}"
            )
        assert seen == set(self._cluster_of)
        # Cluster adjacency must match a from-scratch recomputation.
        for cid, members in self._members.items():
            expected_adj: dict[int, float] = {}
            for obj_id in members:
                for other, sim in self.graph.neighbors(obj_id).items():
                    other_cid = self._cluster_of.get(other)
                    if other_cid is not None and other_cid != cid:
                        expected_adj[other_cid] = expected_adj.get(other_cid, 0.0) + sim
            actual = self._adj[cid]
            for other_cid, weight in expected_adj.items():
                assert abs(actual.get(other_cid, 0.0) - weight) < 1e-6, (
                    f"adjacency drift {cid}->{other_cid}: "
                    f"{actual.get(other_cid, 0.0)} != {weight}"
                )
            for other_cid, weight in actual.items():
                assert other_cid in expected_adj or weight < 1e-6
