"""Helpers for comparing and converting cluster memberships."""

from __future__ import annotations

from typing import Iterable, Mapping

Partition = frozenset[frozenset[int]]


def canonical_partition(groups: Iterable[Iterable[int]]) -> Partition:
    """Canonical, hashable partition form (set of member sets)."""
    return frozenset(frozenset(group) for group in groups if group)


def labels_to_partition(labels: Mapping[int, int]) -> Partition:
    """Convert object→label mapping into the canonical partition form."""
    groups: dict[int, set[int]] = {}
    for obj_id, label in labels.items():
        groups.setdefault(label, set()).add(obj_id)
    return canonical_partition(groups.values())


def partition_to_labels(partition: Iterable[Iterable[int]]) -> dict[int, int]:
    """Assign dense integer labels to a partition's groups."""
    labels: dict[int, int] = {}
    for label, group in enumerate(partition):
        for obj_id in group:
            labels[obj_id] = label
    return labels


def restrict_partition(partition: Iterable[Iterable[int]], keep: set[int]) -> Partition:
    """Project a partition onto a subset of objects (dropping empties)."""
    return canonical_partition(
        [obj_id for obj_id in group if obj_id in keep] for group in partition
    )


def same_clustering(a: Iterable[Iterable[int]], b: Iterable[Iterable[int]]) -> bool:
    """True iff the two groupings describe the identical partition."""
    return canonical_partition(a) == canonical_partition(b)
