#!/usr/bin/env python
"""CI chaos sweep: drive the fault matrix until the time budget runs out.

Runs every cell of the fault matrix — (boundary × fault kind) scenario
pairs spanning crash sweeps, injected I/O errors, torn files and the
full failover drill — then, with whatever budget remains, keeps
deepening the sampled sweeps (more crash points, more tear seeds) so a
longer budget buys more coverage rather than idle time. Every schedule
is seeded: a red run reproduces locally with the seed printed in the
report.

Writes ``benchmarks/results/fault_matrix.json``: one record per cell
with the fault injected, cases executed, pass/fail counts and the
first failure's detail. Exits non-zero if any cell failed (or crashed
outside its expectations).

Usage: python scripts/chaos_sweep.py [--budget-s 120] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.clustering.objectives import CorrelationObjective  # noqa: E402
from repro.core import DynamicC  # noqa: E402
from repro.errors import DegradedError  # noqa: E402
from repro.faults import (  # noqa: E402
    ErrorInjector,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    RetryPolicy,
    eio,
    enospc,
    sample_crash_points,
    tear_file,
)
from repro.replica import LogShipper, MailboxTransport, ReadReplica  # noqa: E402
from repro.serve import Service  # noqa: E402
from repro.similarity import JaccardSimilarity, SimilarityGraph  # noqa: E402
from repro.stream import (  # noqa: E402
    ClusteringService,
    SqliteOperationLog,
    StreamConfig,
    add,
    open_checkpoints,
)
from repro.stream.events import ADD  # noqa: E402
from repro.stream.oplog import OperationLog  # noqa: E402


def factory():
    return DynamicC(
        SimilarityGraph(JaccardSimilarity(), store_threshold=0.05),
        CorrelationObjective(),
        seed=0,
    )


CUT = dict(n_shards=2, batch_max_ops=8, train_rounds=1)


def op(i):
    return add(i, f"tok{i % 5} shared{i % 3}")


class Budget:
    def __init__(self, seconds: float) -> None:
        self.deadline = time.monotonic() + seconds

    def remaining(self) -> float:
        return self.deadline - time.monotonic()

    def exhausted(self) -> bool:
        return self.remaining() <= 0


class Cell:
    """One fault-matrix cell: accumulates sub-case outcomes."""

    def __init__(self, name: str, boundary: str, fault: str) -> None:
        self.record = {
            "cell": name,
            "boundary": boundary,
            "fault": fault,
            "cases": 0,
            "passed": 0,
            "failed": 0,
            "first_failure": None,
        }

    def case(self, label: str, check) -> None:
        self.record["cases"] += 1
        try:
            check()
        except BaseException as exc:  # InjectedCrash escaping counts too
            self.record["failed"] += 1
            if self.record["first_failure"] is None:
                self.record["first_failure"] = f"{label}: {type(exc).__name__}: {exc}"
        else:
            self.record["passed"] += 1


# ----------------------------------------------------------------------
# Crash sweeps (os-level and named-boundary)
# ----------------------------------------------------------------------
def sweep_publish(budget: Budget, round_no: int) -> Cell:
    cell = Cell("publish-atomicity", "ship.publish", "crash")
    from repro.replica import LogSegment

    ops = tuple(add(100 + i, f"p{i}").with_seq(1 + i) for i in range(3))
    artifact = LogSegment(1, 3, ops, primary_seq=3, shipped_at=1.0)
    with TemporaryDirectory() as tmp:
        base = Path(tmp)
        with FaultInjector() as dry:
            MailboxTransport(base / "dry").publish(artifact)
        for crash_at in range(1, len(dry) + 1):
            if budget.exhausted():
                break
            spool = base / f"c{crash_at}"

            def check(crash_at=crash_at, spool=spool):
                transport = MailboxTransport(spool)
                try:
                    with FaultInjector(crash_at=crash_at):
                        transport.publish(artifact)
                except InjectedCrash:
                    pass
                else:
                    raise AssertionError("crash point did not fire")
                polled = MailboxTransport(spool).poll()
                assert polled in ([], [artifact]), "partial artifact visible"

            cell.case(f"crash@{crash_at}", check)
    return cell


def sweep_checkpoint(budget: Budget, round_no: int) -> Cell:
    cell = Cell("checkpoint-atomicity", "checkpoint.save", "crash")
    old, new = {"applied_seq": 5, "s": ["old"]}, {"applied_seq": 9, "s": ["new"]}
    with TemporaryDirectory() as tmp:
        base = Path(tmp)
        with FaultInjector() as dry:
            open_checkpoints(base / "dry").save(dict(new))
        for crash_at in range(1, len(dry) + 1):
            if budget.exhausted():
                break

            def check(crash_at=crash_at):
                directory = base / f"c{crash_at}"
                store = open_checkpoints(directory)
                store.save(dict(old))
                try:
                    with FaultInjector(crash_at=crash_at):
                        store.save(dict(new))
                except InjectedCrash:
                    pass
                else:
                    raise AssertionError("crash point did not fire")
                got = open_checkpoints(directory).load_latest()
                assert got in (old, new), f"garbage checkpoint {got}"

            cell.case(f"crash@{crash_at}", check)
    return cell


def _sweep_truncate(cell: Cell, budget: Budget, make_log, reopen, boundaries):
    n_ops, through = 20, 10
    full = list(range(1, n_ops + 1))
    suffix = list(range(through + 1, n_ops + 1))
    with TemporaryDirectory() as tmp:
        base = Path(tmp)
        log = make_log(base / "dry")
        log.append([add(i, f"p{i}") for i in range(n_ops)])
        if boundaries is None:  # os-level sweep
            with FaultInjector() as dry:
                log.truncate_through(through)
            log.close()
            points = [(None, k) for k in range(1, len(dry) + 1)]
        else:  # named-boundary sweep (sqlite commits below os.fsync)
            with ErrorInjector() as census:
                log.truncate_through(through)
            log.close()
            points = [
                (b, k)
                for b in sorted(census.hits)
                for k in range(1, census.hits[b] + 1)
            ]
        for idx, (boundary, crash_at) in enumerate(points):
            if budget.exhausted():
                break

            def check(idx=idx, boundary=boundary, crash_at=crash_at):
                path = base / f"c{idx}"
                log = make_log(path)
                log.append([add(i, f"p{i}") for i in range(n_ops)])
                injector = (
                    FaultInjector(crash_at=crash_at)
                    if boundary is None
                    else ErrorInjector(FaultSpec(boundary, crash_at=crash_at))
                )
                try:
                    with injector:
                        log.truncate_through(through)
                except InjectedCrash:
                    pass
                else:
                    raise AssertionError("crash point did not fire")
                log.close()
                back = reopen(path)
                seqs = [o.seq for o in back.iter_from(0)]
                assert seqs in (full, suffix), f"torn truncate visible: {seqs}"
                assert back.last_seq == n_ops
                back.close()

            cell.case(f"{boundary or 'os'}@{crash_at}", check)
    return cell


def sweep_truncate_jsonl(budget: Budget, round_no: int) -> Cell:
    return _sweep_truncate(
        Cell("oplog-truncate-jsonl", "oplog.compact", "crash"),
        budget,
        lambda p: OperationLog(p.with_suffix(".jsonl")),
        lambda p: OperationLog(p.with_suffix(".jsonl")),
        boundaries=None,
    )


def sweep_truncate_sqlite(budget: Budget, round_no: int) -> Cell:
    return _sweep_truncate(
        Cell("oplog-truncate-sqlite", "oplog.compact", "crash"),
        budget,
        lambda p: SqliteOperationLog(p.with_suffix(".sqlite")),
        lambda p: SqliteOperationLog(p.with_suffix(".sqlite")),
        boundaries=True,
    )


# ----------------------------------------------------------------------
# Error-injection drills
# ----------------------------------------------------------------------
def drill_retry_heals_poll(budget: Budget, round_no: int) -> Cell:
    cell = Cell("spool-retry", "ship.poll", "eio-transient")

    def check():
        from repro.replica.follower import FollowerDaemon

        with TemporaryDirectory() as tmp:
            base = Path(tmp)
            config = StreamConfig(
                **CUT,
                oplog_path=base / "p" / "oplog.jsonl",
                checkpoint_dir=base / "p" / "ckpt",
            )
            primary = ClusteringService(factory, config)
            shipper = LogShipper(primary.oplog, snapshots=None, max_segment_ops=8)
            shipper.attach(MailboxTransport(base / "spool"), from_seq=0)
            daemon = FollowerDaemon(
                factory,
                StreamConfig(**CUT),
                base / "spool",
                retry=RetryPolicy(
                    max_attempts=3, base_delay_s=0.0, seed=round_no, sleep=lambda s: None
                ),
            )
            try:
                primary.ingest([op(i) for i in range(8)])
                shipper.ship(heartbeat=False)
                with ErrorInjector(eio("ship.poll", fail_times=2)):
                    applied = daemon.run_once()
                assert applied == 8, f"retry did not heal the drain ({applied})"
                assert daemon.poll_error is None
            finally:
                daemon.close()
                primary.close()

    cell.case(f"round{round_no}", check)
    return cell


def drill_tenant_isolation(budget: Budget, round_no: int) -> Cell:
    cell = Cell("tenant-isolation", "checkpoint.save", "enospc-persistent")

    def check():
        with TemporaryDirectory() as tmp:
            with Service.open(
                engine_factory=factory,
                **CUT,
                root_dir=Path(tmp) / "root",
                degraded_probe_s=0.05,
                degraded_probe_max_s=0.2,
            ) as svc:
                svc.tenant("alpha").ingest([op(i) for i in range(8)])
                svc.tenant("bravo").ingest([op(100 + i) for i in range(8)])
                with ErrorInjector(
                    enospc("checkpoint.save", path_substring="tenants/bravo/")
                ) as injector:
                    try:
                        svc.tenant("bravo").checkpoint()
                        raise AssertionError("ENOSPC checkpoint did not degrade")
                    except DegradedError:
                        pass
                    # Isolation: the neighbour ingests AND checkpoints.
                    assert svc.tenant("alpha").ingest([op(20)]) == 1
                    assert svc.tenant("alpha").checkpoint() is not None
                    report = svc.health.report()
                    assert (
                        report["checks"]["tenant:bravo:durability"]["status"]
                        == "degraded"
                    )
                    assert report["ready"] is True, "degraded tenant flipped /readyz"
                    injector.lift()
                    deadline = time.monotonic() + min(5.0, max(1.0, budget.remaining()))
                    while time.monotonic() < deadline:
                        status = svc.health.report()["checks"][
                            "tenant:bravo:durability"
                        ]["status"]
                        if status == "ok":
                            break
                        time.sleep(0.02)
                    else:
                        raise AssertionError("tenant never recovered after lift()")
                assert svc.tenant("bravo").ingest([op(300)]) == 1

    cell.case(f"round{round_no}", check)
    return cell


def drill_failover(budget: Budget, round_no: int) -> Cell:
    cell = Cell("failover", "oplog.append", "crash-mid-burst")

    def burst(base, acked):
        service = ClusteringService(
            factory,
            StreamConfig(
                **CUT,
                oplog_path=base / "primary" / "oplog.jsonl",
                checkpoint_dir=base / "primary" / "ckpt",
                fsync=True,
            ),
        )
        try:
            shipper = LogShipper(service.oplog, snapshots=None, max_segment_ops=8)
            shipper.attach(MailboxTransport(base / "spool"), from_seq=0)
            for batch in range(6):
                service.ingest([op(batch * 5 + i) for i in range(5)])
                shipper.ship(heartbeat=False)
                acked[0] = service.oplog.last_seq
            service.flush()
            shipper.ship(heartbeat=False)
            acked[0] = service.oplog.last_seq
        finally:
            service.close()

    with TemporaryDirectory() as tmp:
        base = Path(tmp)
        with FaultInjector() as dry:
            burst(base / "dry", [0])
        for crash_at in sample_crash_points(len(dry), k=4, seed=41 + round_no):
            if budget.exhausted():
                break

            def check(crash_at=crash_at):
                root = base / f"c{crash_at}"
                acked = [0]
                try:
                    with FaultInjector(crash_at=crash_at):
                        burst(root, acked)
                except InjectedCrash:
                    pass
                else:
                    raise AssertionError("crash point did not fire")
                follower = ReadReplica.bootstrap(
                    factory,
                    StreamConfig(
                        **CUT,
                        oplog_path=root / "follower" / "oplog.jsonl",
                        checkpoint_dir=root / "follower" / "ckpt",
                    ),
                    MailboxTransport(root / "spool"),
                    name="heir",
                )
                follower.poll()
                logged = list(follower.service.oplog.iter_from(0))
                promoted = follower.promote()
                try:
                    seqs = [o.seq for o in logged]
                    assert seqs == list(range(1, len(seqs) + 1)), "gap in promoted log"
                    assert promoted.oplog.last_seq >= acked[0], (
                        f"acked through {acked[0]}, log ends {promoted.oplog.last_seq}"
                    )
                    promoted.flush()
                    visible = promoted.membership.live_ids()
                    assert visible == {o.obj_id for o in logged if o.kind == ADD}
                finally:
                    promoted.close()

            cell.case(f"crash@{crash_at}", check)
    return cell


def drill_tear_shared_log(budget: Budget, round_no: int) -> Cell:
    cell = Cell("shared-oplog-tear", "oplog.append", "torn-tail")

    def check(seed):
        import shutil

        with TemporaryDirectory() as tmp:
            pristine = Path(tmp) / "pristine"
            svc = Service.open(engine_factory=factory, **CUT, root_dir=pristine)
            for i in range(10):
                svc.tenant("alpha").ingest([op(i)])
                svc.tenant("bravo").ingest([op(100 + i)])
            svc.manager.oplog.close()  # crash: no close(), no checkpoint

            root = Path(tmp) / "torn"
            shutil.copytree(pristine, root)
            tear_file(root / "oplog.jsonl", seed=seed)
            healed = OperationLog(root / "oplog.jsonl")
            surviving: dict = {}
            for o in healed.iter_from(0):
                if o.kind == ADD:
                    surviving.setdefault(o.tenant, set()).add(o.obj_id)
            healed.close()
            with Service.open(engine_factory=factory, **CUT, root_dir=root) as back:
                for tenant in ("alpha", "bravo"):
                    handle = back.tenant(tenant)
                    handle.flush()
                    live = set().union(*handle.clusters().values(), set())
                    assert live == surviving.get(tenant, set()), (
                        f"tenant {tenant}: recovered {sorted(live)} != healed "
                        f"log {sorted(surviving.get(tenant, set()))}"
                    )

    for seed in (5 + 100 * round_no, 7 + 100 * round_no):
        if budget.exhausted():
            break
        cell.case(f"seed{seed}", lambda seed=seed: check(seed))
    return cell


MATRIX = [
    sweep_publish,
    sweep_checkpoint,
    sweep_truncate_jsonl,
    sweep_truncate_sqlite,
    drill_retry_heals_poll,
    drill_tenant_isolation,
    drill_failover,
    drill_tear_shared_log,
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-s", type=float, default=120.0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "results"
        / "fault_matrix.json",
    )
    args = parser.parse_args()

    budget = Budget(args.budget_s)
    started = time.time()
    records: list[dict] = []
    round_no = 0
    # Round 0 guarantees one pass over every cell even past budget;
    # later rounds deepen the sampled sweeps while time remains.
    while round_no == 0 or not budget.exhausted():
        for runner in MATRIX:
            if round_no > 0 and budget.exhausted():
                break
            cell = runner(budget, round_no)
            cell.record["round"] = round_no
            records.append(cell.record)
            print(
                f"[chaos] round {round_no} {cell.record['cell']}: "
                f"{cell.record['passed']}/{cell.record['cases']} passed",
                flush=True,
            )
        round_no += 1

    failed = sum(r["failed"] for r in records)
    report = {
        "budget_s": args.budget_s,
        "elapsed_s": round(time.time() - started, 3),
        "rounds": round_no,
        "cases": sum(r["cases"] for r in records),
        "passed": sum(r["passed"] for r in records),
        "failed": failed,
        "cells": records,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"[chaos] {report['passed']}/{report['cases']} cases passed over "
        f"{round_no} round(s) in {report['elapsed_s']}s -> {args.out}"
    )
    if failed:
        for record in records:
            if record["first_failure"]:
                print(
                    f"[chaos] FAILED {record['cell']}: {record['first_failure']}",
                    file=sys.stderr,
                )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
