#!/usr/bin/env python
"""CI smoke test for the live operational surface.

Two stages, each starting a real service with ``obs_server=`` on a
free loopback port, pushing a workload through it, then scraping the
endpoints over actual HTTP exactly the way a monitoring stack would:

1. the deprecated primary/replica façade (``ReplicatedClusteringService``
   — must keep scraping identically through its migration window);
2. the multi-tenant ``repro.serve.Service`` front door — the tenant-
   labeled families (``tenant_ops_total``, ``quota_rejections_total``,
   ``resident_tenants``…) and per-tenant health probes must be live.

For both: ``/metrics`` must answer 200 with parseable Prometheus text
containing the expected families; ``/metrics.json`` and ``/traces``
must answer 200 with valid JSON; ``/healthz`` must answer 200; and
``/readyz`` must answer 200 with every health check reporting.

Exits non-zero (with a reason on stderr) on any failed expectation —
wired into CI so "the scrape broke" is a red build, not a 3 a.m. page.

Usage: python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.clustering.objectives import DBIndexObjective  # noqa: E402
from repro.core import DynamicC  # noqa: E402
from repro.data.generators import generate_access  # noqa: E402
from repro.data.workload import (  # noqa: E402
    OperationMix,
    build_workload,
    tenant_stream,
)
from repro.errors import QuotaExceeded  # noqa: E402
from repro.replica import ReplicatedClusteringService  # noqa: E402
from repro.serve import Service  # noqa: E402
from repro.stream import StreamConfig  # noqa: E402


def fail(reason: str) -> None:
    print(f"obs smoke FAILED: {reason}", file=sys.stderr)
    raise SystemExit(1)


def scrape(address: str, path: str) -> bytes:
    try:
        with urllib.request.urlopen(f"http://{address}{path}", timeout=10) as resp:
            if resp.status != 200:
                fail(f"GET {path} -> {resp.status}")
            return resp.read()
    except OSError as exc:
        fail(f"GET {path} raised {exc!r}")
    raise AssertionError("unreachable")


def validate_prometheus(text: str) -> dict[str, int]:
    """Minimal scraper-side validation: every sample line must parse
    and belong to a # TYPE'd family. Returns sample counts per family."""
    typed: set[str] = set()
    counts: dict[str, int] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split(" ", 3)[2])
            continue
        if line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        try:
            float(value)
        except ValueError:
            fail(f"unparseable sample value in {line!r}")
        name = body.partition("{")[0]
        base = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
        if base not in typed:
            fail(f"sample {name!r} outside any # TYPE'd family")
        counts[base] = counts.get(base, 0) + 1
    if not counts:
        fail("/metrics body contained no samples")
    return counts


def facade_stage(dataset, factory) -> None:
    """Stage 1: the deprecated primary/replica façade still scrapes."""
    workload = build_workload(
        dataset,
        initial_count=80,
        n_snapshots=4,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )
    with TemporaryDirectory() as scratch:
        root = Path(scratch)
        service = ReplicatedClusteringService(
            factory,
            StreamConfig(
                n_shards=2,
                batch_max_ops=48,
                train_rounds=2,
                oplog_path=root / "oplog.jsonl",
                checkpoint_dir=root / "checkpoints",
                telemetry="on",
                obs_server="127.0.0.1:0",
            ),
        )
        try:
            service.add_replica(name="r0")
            service.ingest(workload.event_stream()[:200])
            service.flush()
            service.sync()
            address = service.obs_address
            print(f"scraping http://{address}", file=sys.stderr)

            counts = validate_prometheus(scrape(address, "/metrics").decode())
            for family in (
                "repro_e2e_visibility_seconds",
                "repro_commit_watermark_ts",
                "repro_applied_watermark_ts",
            ):
                if family not in counts:
                    fail(f"{family} missing from /metrics")

            json.loads(scrape(address, "/metrics.json"))
            trace = json.loads(scrape(address, "/traces"))
            if "traceEvents" not in trace:
                fail("/traces is not a Chrome trace")
            json.loads(scrape(address, "/healthz"))

            report = json.loads(scrape(address, "/readyz"))
            if not report.get("ready"):
                fail(f"/readyz not ready: {report}")
            if "replica:r0" not in report.get("checks", {}):
                fail(f"replica check missing from /readyz: {report}")
        finally:
            service.close()
    print("facade surface OK", file=sys.stderr)


def serve_stage(dataset, factory) -> None:
    """Stage 2: the multi-tenant Service front door scrapes with
    tenant-labeled families and per-tenant health probes."""
    stream = tenant_stream(
        dataset,
        n_tenants=3,
        n_ops=150,
        mix=OperationMix(add=0.60, remove=0.15, update=0.25),
        seed=5,
    )
    with TemporaryDirectory() as scratch:
        service = Service.open(
            engine_factory=factory,
            n_shards=2,
            batch_max_ops=32,
            train_rounds=2,
            root_dir=Path(scratch) / "state",
            telemetry="on",
            obs_server="127.0.0.1:0",
            quota_max_pending=64,
        )
        try:
            for tenant, op in stream:
                service.tenant(tenant).ingest([op])
            service.flush()
            service.tenant("tenant-000").add_replica(name="t0")
            service.sync()
            # Provoke one typed rejection so the rejection family has
            # a labeled sample to scrape.
            try:
                service.tenant("tenant-000").ingest(
                    [("add", 9000 + i, (0.0, 0.0, 0.0)) for i in range(65)]
                )
            except QuotaExceeded:
                pass
            else:
                fail("oversized batch was not rejected by the backlog quota")

            address = service.obs_address
            print(f"scraping http://{address} (serve)", file=sys.stderr)
            text = scrape(address, "/metrics").decode()
            counts = validate_prometheus(text)
            for family in (
                "repro_tenant_ops_total",
                "repro_quota_rejections_total",
                "repro_tenant_activations_total",
                "repro_resident_tenants",
            ):
                if family not in counts:
                    fail(f"{family} missing from serve /metrics")
            if 'tenant="tenant-000"' not in text:
                fail("no tenant-labeled sample on the serve /metrics surface")

            json.loads(scrape(address, "/metrics.json"))
            trace = json.loads(scrape(address, "/traces"))
            if "traceEvents" not in trace:
                fail("/traces is not a Chrome trace")
            json.loads(scrape(address, "/healthz"))

            report = json.loads(scrape(address, "/readyz"))
            if not report.get("ready"):
                fail(f"serve /readyz not ready: {report}")
            checks = report.get("checks", {})
            for check in ("oplog", "residency", "tenant:tenant-000"):
                if check not in checks:
                    fail(f"{check!r} check missing from serve /readyz: {report}")
        finally:
            service.close()
    print("serve surface OK", file=sys.stderr)


def main() -> int:
    dataset = generate_access(n_profiles=6, n_records=240, seed=3)

    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    facade_stage(dataset, factory)
    serve_stage(dataset, factory)
    print("obs smoke OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
