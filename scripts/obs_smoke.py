#!/usr/bin/env python
"""CI smoke test for the live operational surface.

Starts a real ReplicatedClusteringService with ``obs_server=`` on a
free loopback port, pushes a small workload through it, then scrapes
the endpoints over actual HTTP exactly the way a monitoring stack
would:

* ``/metrics`` must answer 200 with parseable Prometheus text that
  contains the e2e visibility summary for the primary and the replica;
* ``/metrics.json`` and ``/traces`` must answer 200 with valid JSON;
* ``/healthz`` must answer 200;
* ``/readyz`` must answer 200 with every health check reporting.

Exits non-zero (with a reason on stderr) on any failed expectation —
wired into CI so "the scrape broke" is a red build, not a 3 a.m. page.

Usage: python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.clustering.objectives import DBIndexObjective  # noqa: E402
from repro.core import DynamicC  # noqa: E402
from repro.data.generators import generate_access  # noqa: E402
from repro.data.workload import OperationMix, build_workload  # noqa: E402
from repro.replica import ReplicatedClusteringService  # noqa: E402
from repro.stream import StreamConfig  # noqa: E402


def fail(reason: str) -> None:
    print(f"obs smoke FAILED: {reason}", file=sys.stderr)
    raise SystemExit(1)


def scrape(address: str, path: str) -> bytes:
    try:
        with urllib.request.urlopen(f"http://{address}{path}", timeout=10) as resp:
            if resp.status != 200:
                fail(f"GET {path} -> {resp.status}")
            return resp.read()
    except OSError as exc:
        fail(f"GET {path} raised {exc!r}")
    raise AssertionError("unreachable")


def validate_prometheus(text: str) -> dict[str, int]:
    """Minimal scraper-side validation: every sample line must parse
    and belong to a # TYPE'd family. Returns sample counts per family."""
    typed: set[str] = set()
    counts: dict[str, int] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split(" ", 3)[2])
            continue
        if line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        try:
            float(value)
        except ValueError:
            fail(f"unparseable sample value in {line!r}")
        name = body.partition("{")[0]
        base = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
        if base not in typed:
            fail(f"sample {name!r} outside any # TYPE'd family")
        counts[base] = counts.get(base, 0) + 1
    if not counts:
        fail("/metrics body contained no samples")
    return counts


def main() -> int:
    dataset = generate_access(n_profiles=6, n_records=240, seed=3)
    workload = build_workload(
        dataset,
        initial_count=80,
        n_snapshots=4,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=2,
    )

    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    with TemporaryDirectory() as scratch:
        root = Path(scratch)
        service = ReplicatedClusteringService(
            factory,
            StreamConfig(
                n_shards=2,
                batch_max_ops=48,
                train_rounds=2,
                oplog_path=root / "oplog.jsonl",
                checkpoint_dir=root / "checkpoints",
                telemetry="on",
                obs_server="127.0.0.1:0",
            ),
        )
        try:
            service.add_replica(name="r0")
            service.ingest(workload.event_stream()[:200])
            service.flush()
            service.sync()
            address = service.obs_address
            print(f"scraping http://{address}", file=sys.stderr)

            counts = validate_prometheus(scrape(address, "/metrics").decode())
            for family in (
                "repro_e2e_visibility_seconds",
                "repro_commit_watermark_ts",
                "repro_applied_watermark_ts",
            ):
                if family not in counts:
                    fail(f"{family} missing from /metrics")

            json.loads(scrape(address, "/metrics.json"))
            trace = json.loads(scrape(address, "/traces"))
            if "traceEvents" not in trace:
                fail("/traces is not a Chrome trace")
            json.loads(scrape(address, "/healthz"))

            report = json.loads(scrape(address, "/readyz"))
            if not report.get("ready"):
                fail(f"/readyz not ready: {report}")
            if "replica:r0" not in report.get("checks", {}):
                fail(f"replica check missing from /readyz: {report}")
        finally:
            service.close()
    print("obs smoke OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
