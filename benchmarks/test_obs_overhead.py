"""Telemetry-off overhead guard: the no-op recorder must be ~free.

The `repro.obs` contract is *zero-cost-when-off*: with
``StreamConfig(telemetry=None)`` (the default) every instrumented hot
path pays exactly one guarded attribute lookup (``if obs.enabled:``)
per call. This bench makes that a CI-gated number instead of a code
comment:

* measure the per-operation cost of a micro ingest loop through a
  real (ephemeral, single-shard) :class:`ClusteringService` with
  telemetry disabled;
* measure the cost of one ``obs.enabled`` guard on the shared
  :data:`~repro.obs.NULL_TELEMETRY` singleton, isolated in a tight
  loop;
* assert that a *generous* per-operation guard budget (far more checks
  than the hot path actually performs) stays under 5% of the measured
  per-operation ingest cost.

Comparing a nanosecond-scale guard against a microsecond-scale op is
robust to host noise in a way that differencing two wall-clock service
runs is not — the two quantities are three orders of magnitude apart,
so the assertion fails only if the no-op layer genuinely grows real
work. Emits ``benchmarks/results/obs_overhead.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.obs import NULL_TELEMETRY
from repro.similarity.euclidean import EuclideanSimilarity
from repro.similarity.graph import SimilarityGraph
from repro.stream import ClusteringService, StreamConfig

from conftest import RESULTS_DIR

N_OPS = 600
GUARD_LOOPS = 200_000
#: Guards charged against one operation in the budget check. The real
#: hot path performs ~4 (ingest guard, batch span, shard span, engine
#: maintain guard) amortised over a whole batch; 16 is deliberately
#: unfair to the telemetry layer.
GUARDS_PER_OP = 16
MAX_OVERHEAD_FRACTION = 0.05


def _events(n: int, seed: int = 3):
    rng = np.random.default_rng(seed)
    return [
        ("add", obj_id, np.array([rng.uniform(0, 20), rng.uniform(0, 20)]))
        for obj_id in range(n)
    ]


def _factory():
    return DynamicC(
        SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.2),
        DBIndexObjective(),
        seed=0,
    )


def _micro_ingest_per_op_s() -> float:
    """Per-operation wall cost of the telemetry-off ingest loop."""
    # telemetry=None — the default — is the configuration under test.
    service = ClusteringService(
        _factory, StreamConfig(n_shards=1, batch_max_ops=64, train_rounds=2)
    )
    assert service.telemetry is NULL_TELEMETRY
    events = _events(N_OPS)
    start = time.perf_counter()
    service.ingest(events)
    service.flush()
    wall = time.perf_counter() - start
    return wall / N_OPS


def _guard_cost_s() -> float:
    """Cost of one ``if obs.enabled:`` check on the null recorder."""
    obs = NULL_TELEMETRY
    hits = 0
    start = time.perf_counter()
    for _ in range(GUARD_LOOPS):
        if obs.enabled:
            hits += 1
    wall = time.perf_counter() - start
    assert hits == 0
    # Subtract the bare-loop baseline so only the guard itself counts.
    start = time.perf_counter()
    for _ in range(GUARD_LOOPS):
        pass
    baseline = time.perf_counter() - start
    return max(0.0, wall - baseline) / GUARD_LOOPS


def test_obs_noop_overhead(emit):
    per_op = _micro_ingest_per_op_s()
    guard = _guard_cost_s()
    budget = guard * GUARDS_PER_OP
    fraction = budget / per_op

    report = {
        "ops": N_OPS,
        "ingest_per_op_us": per_op * 1e6,
        "guard_ns": guard * 1e9,
        "guards_per_op_budget": GUARDS_PER_OP,
        "overhead_fraction": fraction,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    }
    emit(
        "\n== telemetry-off overhead ==\n"
        f"ingest per op: {per_op * 1e6:.1f} us; enabled-guard: "
        f"{guard * 1e9:.1f} ns; budget ({GUARDS_PER_OP} guards/op): "
        f"{fraction * 100:.4f}% (limit {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "obs_overhead.json", "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"no-op telemetry guards cost {fraction * 100:.2f}% of an ingest "
        f"op (limit {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
