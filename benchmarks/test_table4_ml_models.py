"""Table 4 — accuracy/recall of LR, SVM and decision tree vs #samples.

Models are trained on growing prefixes of the observed merge-evolution
samples (Cora) and evaluated on a held-out 30%. Paper shape: all three
model families reach high accuracy and ~1.0 recall once a few hundred
samples are available; recall is poor in the smallest regime.
"""

import numpy as np

import _config as config
from repro.eval import render_table
from repro.ml import (
    DecisionTreeClassifier,
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    accuracy,
    recall,
)

MODELS = {
    "logistic-regression": LogisticRegressionClassifier,
    "linear-svm": LinearSVMClassifier,
    "decision-tree": DecisionTreeClassifier,
}


def test_table4_model_families(benchmark, evolution_samples, emit):
    X, y = evolution_samples["cora"]
    split = int(len(y) * 0.7)
    X_train_full, y_train_full = X[:split], y[:split]
    X_test, y_test = X[split:], y[split:]

    benchmark.pedantic(
        lambda: LogisticRegressionClassifier().fit(X_train_full, y_train_full),
        rounds=3,
        iterations=1,
    )

    sizes = [n for n in (25, 50, 100, 200, len(y_train_full)) if n <= len(y_train_full)]
    rows = []
    final = {}
    for model_name, model_cls in MODELS.items():
        for n in sizes:
            Xn, yn = X_train_full[:n], y_train_full[:n]
            if len(np.unique(yn)) < 2:
                continue
            model = model_cls().fit(Xn, yn)
            predictions = model.predict(X_test)
            acc = accuracy(y_test, predictions)
            rec = recall(y_test, predictions)
            rows.append([model_name, n, acc, rec])
            final[model_name] = (acc, rec)
        paper = config.PAPER_TABLE4[model_name]
        rows.append(
            [
                model_name,
                "paper@1077",
                paper["accuracy"][-1],
                paper["recall"][-1],
            ]
        )
    emit(
        render_table(
            ["model", "# train samples", "accuracy", "recall"],
            rows,
            title=(
                "\n== Table 4: ML model families on merge-evolution samples "
                "(paper: all reach acc≈0.92-0.95, recall≈1.0) =="
            ),
        )
    )
    for model_name, (acc, rec) in final.items():
        assert acc > 0.7, f"{model_name}: accuracy too low ({acc:.2f})"
        assert rec > 0.7, f"{model_name}: recall too low ({rec:.2f})"
