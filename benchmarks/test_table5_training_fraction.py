"""Table 5 — logistic regression vs fraction of training data.

Paper shape: low accuracy/recall at 5–10% of the samples, stabilising
as more are provided (Cora/Music/Synthetic).
"""

import numpy as np

import _config as config
from repro.eval import render_table
from repro.ml import LogisticRegressionClassifier, accuracy, recall


def test_table5_training_fraction(benchmark, evolution_samples, emit):
    X, y = evolution_samples["cora"]
    benchmark.pedantic(
        lambda: LogisticRegressionClassifier().fit(X, y), rounds=3, iterations=1
    )

    rows = []
    trend_ok = {}
    for name, (X, y) in evolution_samples.items():
        split = int(len(y) * 0.7)
        X_train_full, y_train_full = X[:split], y[:split]
        X_test, y_test = X[split:], y[split:]
        series = []
        for fraction in config.TABLE5_FRACTIONS:
            n = max(int(len(y_train_full) * fraction), 2)
            Xn, yn = X_train_full[:n], y_train_full[:n]
            if len(np.unique(yn)) < 2:
                series.append((fraction, float("nan"), float("nan")))
                continue
            model = LogisticRegressionClassifier().fit(Xn, yn)
            predictions = model.predict(X_test)
            series.append(
                (fraction, accuracy(y_test, predictions), recall(y_test, predictions))
            )
        paper = config.PAPER_TABLE5[name]
        for (fraction, acc, rec), p_acc, p_rec in zip(
            series, paper["accuracy"], paper["recall"]
        ):
            rows.append([name, f"{fraction:.0%}", acc, rec, p_acc, p_rec])
        valid = [(a, r) for _, a, r in series if a == a]
        trend_ok[name] = valid[-1][0] >= valid[0][0] - 0.05
    emit(
        render_table(
            ["dataset", "fraction", "accuracy", "recall", "paper acc", "paper rec"],
            rows,
            title=(
                "\n== Table 5: LR vs training fraction "
                "(paper shape: quality rises then stabilises) =="
            ),
        )
    )
    assert all(trend_ok.values()), trend_ok
