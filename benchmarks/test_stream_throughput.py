"""Streaming service throughput — events/sec at shards ∈ {1, 2, 4}.

Not a paper figure: this benchmarks the `repro.stream` serving layer on
the synthetic Access workload so future scaling PRs (async ingest,
replication, cheaper graph maintenance) have a perf trajectory to beat.
Emits a table plus ``benchmarks/results/stream_throughput.json``.

Sharding helps twice: rounds on an N-times-smaller graph are cheaper
than 1/N of one big round (graph maintenance and candidate scoring are
super-linear), and shards are independent, so a future async layer can
run them concurrently — the wall-clock numbers here are single-threaded
lower bounds.

The headline rows run the serving configuration: the ``least-loaded``
router with placement chunks aligned to the micro-batch (one batch of
new objects wakes one engine, not all N) and continuous retraining
(``retrain_every``) so serve-time rejections actually reach the models —
without it a shard whose model over-predicts merges re-verifies and
re-rejects the same candidates every round, forever. A ``hash``-router
comparison block is recorded alongside: its N=2 pathology (the dense
similarity component concentrates on one shard, and per-round cost
grows super-linearly with component size) is what the balance-aware
router exists to fix.
"""

from __future__ import annotations

import json
import time

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC, DynamicCConfig
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.eval import render_table
from repro.stream import ClusteringService, StreamConfig

from conftest import RESULTS_DIR

SHARD_COUNTS = (1, 2, 4)
RETRAIN_EVERY = 4
#: Measured passes per configuration; the fastest is reported. The
#: engines are deterministic, so repeated passes differ only by host
#: noise — best-of-N keeps the recorded trajectory comparable across
#: runs.
PASSES = 2


def _run_once(factory, events, n_shards: int, router: str):
    service = ClusteringService(
        factory,
        StreamConfig(
            n_shards=n_shards, batch_max_ops=64, train_rounds=2, router=router
        ),
    )
    start = time.perf_counter()
    service.ingest(events)
    service.flush()
    wall = time.perf_counter() - start
    stats = service.stats()
    assert stats["applied_seq"] == len(events)
    assert stats["pending_ops"] == 0
    return wall, stats


def _run(factory, events, n_shards: int, router: str) -> dict:
    wall, stats = min(
        (_run_once(factory, events, n_shards, router) for _ in range(PASSES)),
        key=lambda pair: pair[0],
    )
    return {
        "n_shards": n_shards,
        "router": router,
        "events": len(events),
        "wall_s": wall,
        "events_per_s_wall": len(events) / wall,
        "events_per_s_busy": stats["throughput_events_per_s"],
        "batches": stats["batches_applied"],
        # Percentiles ride along free now that LatencyStat is
        # histogram-backed: p50/p95/p99 of per-batch apply latency.
        "batch_latency": stats["batch_latency"],
        "round_latency": [
            shard["round_latency"] for shard in stats["shards"]
        ],
        "clusters": stats["num_clusters"],
        "objects": stats["num_objects"],
        "shard_objects": [shard["objects"] for shard in stats["shards"]],
    }


def test_stream_throughput(emit):
    dataset = generate_access(n_profiles=10, n_records=700, seed=9)
    workload = build_workload(
        dataset,
        initial_count=250,
        n_snapshots=8,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=4,
    )
    events = workload.event_stream()

    def factory():
        return DynamicC(
            dataset.graph(),
            DBIndexObjective(),
            seed=0,
            config=DynamicCConfig(retrain_every=RETRAIN_EVERY),
        )

    results = [_run(factory, events, n, "least-loaded") for n in SHARD_COUNTS]
    hash_results = [_run(factory, events, n, "hash") for n in SHARD_COUNTS]

    emit(
        render_table(
            [
                "router", "shards", "events", "wall s", "ev/s (wall)",
                "ev/s (busy)", "batch p95 ms", "clusters",
            ],
            [
                [
                    r["router"],
                    r["n_shards"],
                    r["events"],
                    r["wall_s"],
                    r["events_per_s_wall"],
                    r["events_per_s_busy"],
                    r["batch_latency"]["p95_s"] * 1e3,
                    r["clusters"],
                ]
                for r in results + hash_results
            ],
            title="\n== repro.stream ingest throughput on Access (single-threaded) ==",
            precision=1,
        )
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "stream_throughput.json", "w") as handle:
        json.dump(
            {
                "workload": "access",
                "engine": {"retrain_every": RETRAIN_EVERY},
                "results": results,
                "hash_router_comparison": hash_results,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    # Sanity floor only — absolute and comparative numbers are too
    # machine/noise-dependent to gate CI on; the trajectory lives in
    # the JSON artefact.
    for r in results + hash_results:
        assert r["events_per_s_wall"] > 0
