"""Figure 7 — re-clustering latency on Cora / Music / Synthetic (DB-index).

Paper shape: Hill-climbing omitted (hours); Greedy's latency grows
significantly with dataset size while DynamicC stays low; Naive is
trivially fast but inaccurate (Fig. 6).
"""

from repro.eval import render_table


def test_fig7_dbindex_latency(benchmark, dbindex_suite, emit):
    dynamicc = dbindex_suite["cora"]["dynamicc"]
    benchmark.pedantic(lambda: [r.latency for r in dynamicc.rounds], rounds=5, iterations=1)

    rows = []
    totals = {}
    for name, entry in dbindex_suite.items():
        methods = {
            "naive": entry["naive"],
            "greedy": entry["greedy"],
            "dynamicc": entry["dynamicc"],
            "hill-climbing(batch)": entry["reference"],
        }
        indices = [r.index for r in entry["dynamicc"].predict_rounds()]
        for method, run in methods.items():
            by_index = {r.index: r for r in run.rounds}
            for index in indices:
                record = by_index.get(index)
                if record is None:
                    continue
                rows.append(
                    [name, method, index, len(record.labels), record.latency * 1e3]
                )
            totals[(name, method)] = sum(
                by_index[i].latency for i in indices if i in by_index
            )
    emit(
        render_table(
            ["dataset", "method", "round", "# objects", "latency ms"],
            rows,
            title=(
                "\n== Fig 7: DB-index re-clustering latency "
                "(paper shape: DynamicC well below Greedy, batch omitted) =="
            ),
            precision=1,
        )
    )
    # Shape: batch is the slowest on every dataset; DynamicC total beats it
    # by a wide margin.
    for name in dbindex_suite:
        assert totals[(name, "dynamicc")] < 0.5 * totals[(name, "hill-climbing(batch)")]
