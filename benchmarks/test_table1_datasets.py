"""Table 1 — experimental settings on the datasets.

Prints the generated datasets' settings next to the paper's (sizes are
scaled; see DESIGN.md §4 and _config.py).
"""

import _config as config
from repro.data.generators import generate_cora
from repro.eval import render_table

PAPER_ROWS = {
    "cora": ("Jaccard", 279, 1879, "textual and numerical"),
    "music": ("Cosine Trigram", "4K", 15375, "textual"),
    "access": ("Euclidean", "1K", 20208, "numerical"),
    "road": ("Euclidean", "100K", 344768, "numerical"),
    "synthetic": ("Levenshtein and Jaccard", "10K", "43K", "textual and numerical"),
}


def test_table1_dataset_settings(benchmark, dbindex_suite, dbscan_access_suite, dbscan_road_suite, emit):
    benchmark.pedantic(
        lambda: generate_cora(n_entities=20, n_duplicates=60, seed=0),
        rounds=3,
        iterations=1,
    )
    rows = []
    for name, entry in dbindex_suite.items():
        workload = entry["workload"]
        dataset = entry["dataset"]
        paper = PAPER_ROWS[name]
        rows.append(
            [
                name,
                dataset.similarity.name,
                len(workload.initial),
                workload.final_object_count(),
                dataset.data_type,
                f"(paper: {paper[0]}, {paper[1]} -> {paper[2]})",
            ]
        )
    for name, suite in (("access", dbscan_access_suite), ("road", dbscan_road_suite)):
        workload = suite["workload"]
        dataset = suite["dataset"]
        paper = PAPER_ROWS[name]
        rows.append(
            [
                name,
                dataset.similarity.name,
                len(workload.initial),
                workload.final_object_count(),
                dataset.data_type,
                f"(paper: {paper[0]}, {paper[1]} -> {paper[2]})",
            ]
        )
    emit(
        render_table(
            ["dataset", "similarity", "# initial", "# final", "type", "paper scale"],
            rows,
            title="\n== Table 1: dataset settings (scaled; see DESIGN.md) ==",
        )
    )
    assert len(rows) == 5
