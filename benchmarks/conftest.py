"""Benchmark fixtures: shared experiment suites, computed once per session.

Each figure/table bench reads from these cached runs, times a
representative kernel through pytest-benchmark, and prints a
paper-vs-measured table (also appended to ``benchmarks/results/``).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import _config as config
from repro.clustering.baselines import GreedyIncremental, NaiveIncremental
from repro.clustering.batch import DBSCAN, HillClimbing
from repro.clustering.objectives import DBIndexObjective, KMeansObjective
from repro.core import (
    DBSCANBatchAdapter,
    DynamicC,
    DynamicCConfig,
    make_dynamic_dbscan,
)
from repro.data.generators import (
    generate_access,
    generate_cora,
    generate_febrl,
    generate_musicbrainz,
    generate_road,
)
from repro.data.workload import OperationMix, build_workload
from repro.eval.harness import run_batch_per_round, run_incremental

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Print a report table past pytest's capture and persist it."""

    def _emit(text: str, filename: str = "summary.txt") -> None:
        with capsys.disabled():
            print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / filename, "a") as handle:
            handle.write(text + "\n")

    return _emit


def _generate(spec: dict):
    kind = spec["generator"]
    if kind == "cora":
        return generate_cora(
            n_entities=spec["n_entities"],
            n_duplicates=spec["n_duplicates"],
            distribution=spec["distribution"],
            seed=spec["seed"],
        )
    if kind == "musicbrainz":
        return generate_musicbrainz(
            n_entities=spec["n_entities"],
            n_duplicates=spec["n_duplicates"],
            distribution=spec["distribution"],
            seed=spec["seed"],
        )
    if kind == "febrl":
        return generate_febrl(
            n_originals=spec["n_entities"],
            n_duplicates=spec["n_duplicates"],
            distribution=spec["distribution"],
            seed=spec["seed"],
        )
    raise ValueError(kind)


def _workload(dataset, spec: dict):
    return build_workload(
        dataset,
        initial_count=spec["initial"],
        n_snapshots=spec["snapshots"],
        mixes=OperationMix(add=spec["add"], remove=spec["remove"], update=spec["update"]),
        seed=spec["seed"] + 1,
    )


# ---------------------------------------------------------------------------
# DB-index suite (Figs. 6–7, Tables 2–3, headline, ablations)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def dbindex_suite():
    suite = {}
    for name, spec in config.DBINDEX_DATASETS.items():
        dataset = _generate(spec)
        workload = _workload(dataset, spec)
        bootstrap = lambda g: HillClimbing(DBIndexObjective()).cluster(g)
        reference = run_batch_per_round(
            workload,
            lambda: HillClimbing(DBIndexObjective()),
            score_fn=lambda c: DBIndexObjective().score(c),
        )
        naive = run_incremental(
            workload,
            lambda g: NaiveIncremental(g, threshold=0.4),
            bootstrap=bootstrap,
            score_fn=lambda c: DBIndexObjective().score(c),
        )
        greedy = run_incremental(
            workload,
            lambda g: GreedyIncremental(g, DBIndexObjective()),
            bootstrap=bootstrap,
            score_fn=lambda c: DBIndexObjective().score(c),
        )
        dynamicc = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=0),
            bootstrap=bootstrap,
            train_rounds=config.DBINDEX_TRAIN_ROUNDS,
            score_fn=lambda c: DBIndexObjective().score(c),
        )
        dynamicc_greedyset = run_incremental(
            workload,
            lambda g: DynamicC(g, DBIndexObjective(), seed=0),
            bootstrap=bootstrap,
            train_rounds=config.DBINDEX_TRAIN_ROUNDS,
            reset_from=greedy,
            score_fn=lambda c: DBIndexObjective().score(c),
            name="dynamicc-greedyset",
        )
        suite[name] = {
            "dataset": dataset,
            "workload": workload,
            "reference": reference,
            "naive": naive,
            "greedy": greedy,
            "dynamicc": dynamicc,
            "dynamicc_greedyset": dynamicc_greedyset,
        }
    return suite


# ---------------------------------------------------------------------------
# k-means suite (Figs. 5(d), 5(e))
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def kmeans_suite():
    spec = config.KMEANS_ROAD
    dataset = generate_road(
        n_roads=spec["n_roads"], points_per_road=spec["points_per_road"], seed=spec["seed"]
    )
    workload = build_workload(
        dataset,
        initial_count=spec["initial"],
        n_snapshots=spec["snapshots"],
        mixes=OperationMix(add=spec["add"], remove=spec["remove"], update=spec["update"]),
        seed=spec["seed"] + 1,
    )
    k, penalty = spec["k"], spec["penalty"]

    def make_objective():
        return KMeansObjective(k=k, penalty=penalty)

    score_fn = lambda c: make_objective().score(c)
    bootstrap = lambda g: HillClimbing(make_objective()).cluster(g)
    reference = run_batch_per_round(
        workload, lambda: HillClimbing(make_objective()), score_fn=score_fn
    )
    naive = run_incremental(
        workload,
        lambda g: NaiveIncremental(g, threshold=0.35),
        bootstrap=bootstrap,
        score_fn=score_fn,
    )
    greedy = run_incremental(
        workload,
        lambda g: GreedyIncremental(g, make_objective()),
        bootstrap=bootstrap,
        score_fn=score_fn,
    )

    def dynamicc_factory(graph):
        objective = make_objective()
        return DynamicC(
            graph,
            objective,
            batch=HillClimbing(objective),
            config=DynamicCConfig(candidate_scope="all"),
            seed=0,
        )

    dynamicc = run_incremental(
        workload,
        dynamicc_factory,
        bootstrap=bootstrap,
        train_rounds=config.KMEANS_TRAIN_ROUNDS,
        score_fn=score_fn,
    )
    dynamicc_greedyset = run_incremental(
        workload,
        dynamicc_factory,
        bootstrap=bootstrap,
        train_rounds=config.KMEANS_TRAIN_ROUNDS,
        reset_from=greedy,
        score_fn=score_fn,
        name="dynamicc-greedyset",
    )
    return {
        "dataset": dataset,
        "workload": workload,
        "spec": spec,
        "reference": reference,
        "naive": naive,
        "greedy": greedy,
        "dynamicc": dynamicc,
        "dynamicc_greedyset": dynamicc_greedyset,
    }


# ---------------------------------------------------------------------------
# DBSCAN suite (Figs. 5(b), 5(c))
# ---------------------------------------------------------------------------


def _dbscan_runs(dataset, spec):
    workload = build_workload(
        dataset,
        initial_count=spec["initial"],
        n_snapshots=spec["snapshots"],
        mixes=OperationMix(add=spec["add"], remove=spec["remove"], update=spec["update"]),
        seed=spec["seed"] + 1,
    )
    sim_eps, min_pts = spec["sim_eps"], spec["min_pts"]
    reference = run_batch_per_round(
        workload, lambda: DBSCANBatchAdapter(sim_eps, min_pts)
    )
    dynamicc = run_incremental(
        workload,
        lambda g: make_dynamic_dbscan(
            g, sim_eps, min_pts, config=DynamicCConfig(candidate_scope="local"), seed=0
        ),
        bootstrap=lambda g: DBSCAN(sim_eps, min_pts).run(g).clustering,
        train_rounds=config.DBSCAN_TRAIN_ROUNDS,
    )
    return {"workload": workload, "reference": reference, "dynamicc": dynamicc}


@pytest.fixture(scope="session")
def dbscan_access_suite():
    spec = config.DBSCAN_ACCESS
    dataset = generate_access(
        n_profiles=spec["n_profiles"], n_records=spec["n_records"], seed=spec["seed"]
    )
    return _dbscan_runs(dataset, spec) | {"dataset": dataset, "spec": spec}


@pytest.fixture(scope="session")
def dbscan_road_suite():
    spec = config.DBSCAN_ROAD
    dataset = generate_road(
        n_roads=spec["n_roads"], points_per_road=spec["points_per_road"], seed=spec["seed"]
    )
    return _dbscan_runs(dataset, spec) | {"dataset": dataset, "spec": spec}


# ---------------------------------------------------------------------------
# ML evaluation suite (Fig. 3, Fig. 4, Tables 4–5)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def evolution_samples():
    """Merge-model training matrices per dataset, from observed evolution."""
    import numpy as np

    suite = {}
    for name, spec in config.DBINDEX_DATASETS.items():
        dataset = _generate(spec)
        workload = _workload(dataset, spec)
        graph = dataset.graph()
        for obj_id, payload in workload.initial.items():
            graph.add_object(obj_id, payload)
        dyn = DynamicC(graph, DBIndexObjective(), seed=7)
        dyn.bootstrap(HillClimbing(DBIndexObjective()).cluster(graph))
        for snapshot in workload.snapshots:
            dyn.observe_round(
                added=snapshot.added,
                removed=snapshot.removed,
                updated=snapshot.updated,
            )
        X, y = dyn.buffer.merge_matrix()
        rng = np.random.default_rng(0)
        order = rng.permutation(len(y))
        suite[name] = (X[order], y[order])
    return suite
