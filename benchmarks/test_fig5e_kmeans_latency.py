"""Figure 5(e) — re-clustering latency on Road (k-means).

Paper shape: Hill-climbing is omitted from the plot (it takes hours);
DynamicC's latency is far below Greedy's and Naive's stays trivially
small (it does no restructuring).
"""

from repro.eval import render_table


def test_fig5e_kmeans_latency(benchmark, kmeans_suite, emit):
    suite = kmeans_suite
    dynamicc = suite["dynamicc"]

    # Kernel: one DynamicC prediction round replayed on the recorded
    # stats (score of candidate clusters ≈ the round's dominant work is
    # already captured; time the pair-metric aggregation used below).
    from repro.eval.harness import f1_against_reference

    benchmark.pedantic(
        lambda: f1_against_reference(dynamicc, suite["reference"]),
        rounds=3,
        iterations=1,
    )

    methods = {
        "naive": suite["naive"],
        "greedy": suite["greedy"],
        "dynamicc": dynamicc,
        "hill-climbing(batch)": suite["reference"],
    }
    indices = [r.index for r in dynamicc.predict_rounds()]
    rows = []
    for name, run in methods.items():
        by_index = {r.index: r for r in run.rounds}
        for index in indices:
            record = by_index.get(index)
            if record is None:
                continue
            rows.append([name, index, len(record.labels), record.latency * 1e3])
    emit(
        render_table(
            ["method", "round", "# objects", "latency ms"],
            rows,
            title=(
                "\n== Fig 5(e): k-means re-clustering latency on Road "
                "(paper shape: DynamicC << Greedy << batch) =="
            ),
            precision=1,
        )
    )
    total = {
        name: sum(r.latency for r in run.rounds if r.index in set(indices))
        for name, run in methods.items()
    }
    # Shape: DynamicC is faster than Greedy and much faster than batch.
    assert total["dynamicc"] < total["greedy"]
    assert total["dynamicc"] < 0.5 * total["hill-climbing(batch)"]
