"""Figure 5(d) — √(objective score) over snapshots on Road (k-means).

Paper shape: Naive's score blows up as updates accumulate; Hill-climbing
(the batch), Greedy and both DynamicC variants stay close together.
"""

import math

from repro.clustering.objectives import KMeansObjective
from repro.clustering.state import Clustering
from repro.eval import render_table


def test_fig5d_kmeans_objective_score(benchmark, kmeans_suite, emit):
    suite = kmeans_suite
    spec = suite["spec"]

    # Kernel: scoring the final reference clustering.
    reference = suite["reference"]
    final = reference.rounds[-1]
    graph = suite["dataset"].graph()
    payloads = suite["dataset"].payloads()
    for obj_id in final.labels:
        graph.add_object(obj_id, payloads[obj_id])
    clustering = Clustering.from_labels(graph, final.labels)
    objective = KMeansObjective(k=spec["k"], penalty=spec["penalty"])
    benchmark.pedantic(lambda: objective.score(clustering), rounds=5, iterations=1)

    methods = {
        "hill-climbing": suite["reference"],
        "naive": suite["naive"],
        "greedy": suite["greedy"],
        "dynamicc(greedyset)": suite["dynamicc_greedyset"],
        "dynamicc(dynamicset)": suite["dynamicc"],
    }
    rows = []
    indices = [r.index for r in suite["dynamicc"].predict_rounds()]
    for name, run in methods.items():
        by_index = {r.index: r for r in run.rounds}
        for index in indices:
            record = by_index.get(index)
            if record is None or record.score is None:
                continue
            rows.append([name, index, len(record.labels), math.sqrt(record.score)])
    emit(
        render_table(
            ["method", "round", "# objects", "sqrt(objective)"],
            rows,
            title=(
                "\n== Fig 5(d): sqrt k-means objective on Road "
                "(paper shape: Naive worst & growing, others ≈ batch) =="
            ),
            precision=1,
        )
    )
    # Shape check: Naive's final score far above every other method's.
    final_index = indices[-1]
    scores = {
        name: {r.index: r.score for r in run.rounds}[final_index]
        for name, run in methods.items()
    }
    assert scores["naive"] > 3 * scores["hill-climbing"]
    assert scores["dynamicc(dynamicset)"] < 3 * scores["hill-climbing"]
    assert scores["greedy"] < 3 * scores["hill-climbing"]
