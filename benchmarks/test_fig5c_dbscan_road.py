"""Figure 5(c) — re-clustering latency on Road: DBSCAN vs DynamicC.

Same comparison as Fig. 5(b) on the spatial Road workload (paper: F1
0.976 with 40–60% latency savings at 100K–345K points).
"""

from repro.core import DBSCANBatchAdapter
from repro.eval import render_table
from repro.eval.harness import f1_against_reference


def test_fig5c_dbscan_vs_dynamicc_road(benchmark, dbscan_road_suite, emit):
    suite = dbscan_road_suite
    spec = suite["spec"]
    reference, dynamicc = suite["reference"], suite["dynamicc"]

    workload = suite["workload"]
    dataset = suite["dataset"]
    graph = dataset.graph()
    live = workload.live_ids_after(len(workload.snapshots))
    payloads = dataset.payloads()
    for obj_id in live:
        graph.add_object(obj_id, payloads[obj_id])
    benchmark.pedantic(
        lambda: DBSCANBatchAdapter(spec["sim_eps"], spec["min_pts"]).cluster(graph),
        rounds=3,
        iterations=1,
    )

    ref_by_index = {r.index: r for r in reference.rounds}
    rows = []
    for record, metrics in zip(
        dynamicc.predict_rounds(), f1_against_reference(dynamicc, reference)
    ):
        batch_round = ref_by_index[record.index]
        rows.append(
            [
                record.index,
                len(batch_round.labels),
                batch_round.latency * 1e3,
                record.latency * 1e3,
                metrics.f1,
            ]
        )
    emit(
        render_table(
            ["round", "# objects", "DBSCAN ms", "DynamicC ms", "pair-F1"],
            rows,
            title=(
                "\n== Fig 5(c): DBSCAN vs DynamicC latency on Road "
                "(paper: DynamicC saves 40-60%, F1≈0.976) =="
            ),
            precision=2,
        )
    )
    mean_f1 = sum(r[-1] for r in rows) / len(rows)
    assert mean_f1 > 0.9
