"""Ablations on DynamicC's design choices (DESIGN.md per-experiment index).

A — objective verification (§5.4): disabling the check lets false-
    positive predictions through; quality must drop.
B — active-cluster negative sampling (§5.3): the paper's 0.7/0.3
    weighting versus uniform sampling.
C — θ policy (§5.4): min-positive-probability versus a fixed 0.5
    threshold (accuracy-style), measured as serve-time nomination recall
    proxies: applied changes and final quality.
D — partner selection (§6.2): the paper's min-P(C_new=1) heuristic
    versus best-objective-delta (this reproduction's default).
"""

import numpy as np

from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC, DynamicCConfig
from repro.eval import render_table
from repro.eval.harness import f1_against_reference, run_incremental


def _run(workload, config, seed=0):
    return run_incremental(
        workload,
        lambda g: DynamicC(g, DBIndexObjective(), config=config, seed=seed),
        bootstrap=lambda g: HillClimbing(DBIndexObjective()).cluster(g),
        train_rounds=3,
    )


def _mean_f1(run, reference):
    metrics = f1_against_reference(run, reference)
    return float(np.mean([m.f1 for m in metrics]))


def test_ablations(benchmark, dbindex_suite, emit):
    entry = dbindex_suite["cora"]
    workload, reference = entry["workload"], entry["reference"]
    benchmark.pedantic(
        lambda: _run(workload, DynamicCConfig()), rounds=1, iterations=1
    )

    variants = {
        "default (verified, 0.7/0.3, min-pos θ, best-delta)": DynamicCConfig(),
        "A: no objective verification": DynamicCConfig(verify_with_objective=False),
        "B: uniform negative sampling": DynamicCConfig(
            negative_active_weight=0.5, negative_inactive_weight=0.5
        ),
        "C: fixed θ = 0.5 (accuracy-style)": DynamicCConfig(
            theta_quantile=0.0, theta_floor=0.5
        ),
        "D: min-probability partner (§6.2)": DynamicCConfig(
            partner_selection="min-probability"
        ),
    }
    rows = []
    results = {}
    for name, config in variants.items():
        run = _run(workload, config)
        f1 = _mean_f1(run, reference)
        results[name] = f1
        rows.append([name, f1, run.total_latency()])
    emit(
        render_table(
            ["variant", "mean pair-F1 vs batch", "total latency s"],
            rows,
            title="\n== Ablations A-D on the Cora DB-index workload ==",
            precision=3,
        )
    )
    default_f1 = results["default (verified, 0.7/0.3, min-pos θ, best-delta)"]
    # Verification is load-bearing: removing it must hurt quality.
    assert results["A: no objective verification"] < default_f1 - 0.02
    # The default configuration is the best or near-best variant.
    assert default_f1 >= max(results.values()) - 0.05
