"""Multi-tenant serve-layer scale — many tenants through one front door.

Not a paper figure: this benchmarks `repro.serve` so future scheduling
PRs have a trajectory to beat. A zipfian tenant/key-skewed stream (the
shape multi-tenant entity-resolution traffic actually has — a few hot
namespaces, hot keys within each) is driven through three topologies:

* **ephemeral** — every tenant pool resident, no durability;
* **durable** — shared tenant-stamped oplog + per-tenant checkpoints;
* **durable+LRU** — the same with a resident-pool cap of a third of
  the tenants, so the hot/cold skew exercises activation churn
  (evictions checkpoint out, reloads replay the shared-log suffix).

A fourth pass pins admission control: a tight per-tenant rate quota
under the same skew, counting typed rejections per tenant. Emits a
table plus ``benchmarks/results/tenant_scale.json``.
"""

from __future__ import annotations

import json
import time

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, tenant_stream
from repro.errors import QuotaExceeded
from repro.eval import render_table
from repro.serve import Service

import _config as config
from conftest import RESULTS_DIR

N_TENANTS = config.scaled(8)
N_OPS = config.scaled(1000)
TENANT_SKEW = 1.1
KEY_SKEW = 1.1
CUT = dict(n_shards=2, batch_max_ops=32, train_rounds=2)


def _drive(service, stream) -> dict:
    rejected: dict[str, int] = {}
    start = time.perf_counter()
    for tenant, op in stream:
        try:
            service.tenant(tenant).ingest([op])
        except QuotaExceeded as exc:
            rejected[exc.tenant] = rejected.get(exc.tenant, 0) + 1
    service.flush()
    wall = time.perf_counter() - start
    return {"wall_s": wall, "rejected": rejected}


def _run(label: str, dataset, stream, **serve_kwargs) -> dict:
    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    with Service.open(engine_factory=factory, **CUT, **serve_kwargs) as svc:
        run = _drive(svc, stream)
        stats = svc.stats()
        per_tenant_ops = {
            name: snap.get("ops_total", 0)
            for name, snap in stats["tenants"].items()
            if snap["resident"]
        }
        return {
            "label": label,
            "tenants": N_TENANTS,
            "ops": len(stream),
            "wall_s": run["wall_s"],
            "ops_per_s": len(stream) / run["wall_s"],
            "ops_accepted": stats["ops_total"],
            "resident_tenants": stats["resident_tenants"],
            "max_resident_tenants": stats["max_resident_tenants"],
            "activations_total": stats["activations_total"],
            "evictions_total": stats["evictions_total"],
            "quota_rejections_total": stats["quota_rejections_total"],
            "quota_rejections": stats["quota_rejections"],
            "rejected_per_tenant": run["rejected"],
            "backlog": stats["backlog"],
            "ingest_p95_ms": stats["p95_s"] * 1e3,
            "resident_ops": per_tenant_ops,
        }


def test_tenant_scale(emit, tmp_path):
    dataset = generate_access(n_profiles=8, n_records=600, seed=3)
    stream = tenant_stream(
        dataset,
        n_tenants=N_TENANTS,
        n_ops=N_OPS,
        tenant_skew=TENANT_SKEW,
        key_skew=KEY_SKEW,
        mix=OperationMix(add=0.60, remove=0.15, update=0.25),
        seed=17,
    )

    cap = max(N_TENANTS // 3, 1)
    results = [
        _run("ephemeral", dataset, stream),
        _run("durable", dataset, stream, root_dir=tmp_path / "durable"),
        _run(
            f"durable+lru(cap={cap})",
            dataset,
            stream,
            root_dir=tmp_path / "lru",
            max_resident_tenants=cap,
        ),
        _run(
            "durable+rate-quota",
            dataset,
            stream,
            root_dir=tmp_path / "quota",
            quota_ops_per_s=25.0,
            quota_burst=N_OPS // N_TENANTS,
        ),
    ]

    emit(
        render_table(
            [
                "topology", "tenants", "ops", "wall s", "ops/s",
                "resident", "activations", "evictions", "rejected",
                "p95 ms",
            ],
            [
                [
                    r["label"],
                    r["tenants"],
                    r["ops"],
                    r["wall_s"],
                    r["ops_per_s"],
                    r["resident_tenants"],
                    r["activations_total"],
                    r["evictions_total"],
                    r["quota_rejections_total"],
                    r["ingest_p95_ms"],
                ]
                for r in results
            ],
            title="\n== repro.serve multi-tenant ingest (zipfian skew) ==",
            precision=1,
        )
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "tenant_scale.json", "w") as handle:
        json.dump(
            {
                "workload": {
                    "dataset": "access",
                    "n_tenants": N_TENANTS,
                    "n_ops": N_OPS,
                    "tenant_skew": TENANT_SKEW,
                    "key_skew": KEY_SKEW,
                },
                "cut": CUT,
                "results": results,
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    ephemeral, durable, lru, quota = results
    # Sanity pins, not perf gates (absolute numbers are host noise):
    # every topology accepts the full stream except the quota run...
    assert ephemeral["ops_accepted"] == len(stream)
    assert durable["ops_accepted"] == len(stream)
    assert lru["ops_accepted"] == len(stream)
    assert quota["quota_rejections_total"] > 0
    assert quota["ops_accepted"] + sum(quota["rejected_per_tenant"].values()) == len(
        stream
    )
    # ...the LRU run respects its cap while churning through all
    # tenants (reload activations beyond the first touch).
    assert lru["resident_tenants"] <= cap
    assert lru["evictions_total"] > 0
    assert lru["activations_total"] > N_TENANTS
    for r in results:
        assert r["ops_per_s"] > 0
