"""Table 3 — precision / recall / purity / inverse purity (last round).

Paper shape: DynamicC attains the best values on all four metrics,
Greedy close behind, Naive clearly worse.
"""

import _config as config
from repro.eval import inverse_purity, purity, render_table
from repro.eval.harness import f1_against_reference


def test_table3_other_metrics(benchmark, dbindex_suite, emit):
    entry = dbindex_suite["cora"]
    last = entry["dynamicc"].rounds[-1]
    ref_last = entry["reference"].rounds[-1]
    benchmark.pedantic(
        lambda: (purity(last.labels, ref_last.labels),
                 inverse_purity(last.labels, ref_last.labels)),
        rounds=3,
        iterations=1,
    )

    rows = []
    measured = {}
    for name, entry in dbindex_suite.items():
        final_index = entry["dynamicc"].predict_rounds()[-1].index
        reference = {r.index: r for r in entry["reference"].rounds}[final_index]
        for method in ("naive", "greedy", "dynamicc"):
            run = entry[method]
            record = {r.index: r for r in run.rounds}[final_index]
            metrics = f1_against_reference(run, entry["reference"])
            by_index = {
                rec.index: m for rec, m in zip(run.predict_rounds(), metrics)
            }
            pm = by_index[final_index]
            pur = purity(record.labels, reference.labels)
            inv = inverse_purity(record.labels, reference.labels)
            measured[(name, method)] = (pm.precision, pm.recall, pur, inv)
            paper = config.PAPER_TABLE3[name][method]
            rows.append(
                [
                    name,
                    method,
                    pm.precision,
                    pm.recall,
                    pur,
                    inv,
                    f"| paper: {paper[0]:.3f}/{paper[1]:.3f}/{paper[2]:.3f}/{paper[3]:.3f}",
                ]
            )
    emit(
        render_table(
            ["dataset", "method", "precision", "recall", "purity", "inv-purity", "paper p/r/pur/inv"],
            rows,
            title="\n== Table 3: last-round quality metrics (measured | paper) ==",
        )
    )
    for name in dbindex_suite:
        # Naive's merge-only strategy under-merges, which inflates purity
        # but destroys completeness: DynamicC must win on inverse purity
        # and on the purity/inverse-purity average.
        dyn = measured[(name, "dynamicc")]
        naive = measured[(name, "naive")]
        assert dyn[3] >= naive[3] - 0.02, f"{name}: inverse purity"
        assert (dyn[2] + dyn[3]) / 2 >= (naive[2] + naive[3]) / 2 - 0.02, name
