"""Figure 5(b) — re-clustering latency on Access: DBSCAN vs DynamicC.

Paper shape: DynamicC's per-round latency sits below batch DBSCAN's and
the gap widens as objects accumulate ("saves around 40% to 60% time
while reaching F1 scores that are close to the optimal", §7.2.1).
"""

from repro.core import DBSCANBatchAdapter
from repro.eval import render_table
from repro.eval.harness import f1_against_reference


def test_fig5b_dbscan_vs_dynamicc_access(benchmark, dbscan_access_suite, emit):
    suite = dbscan_access_suite
    spec = suite["spec"]
    reference, dynamicc = suite["reference"], suite["dynamicc"]

    # Kernel: one batch DBSCAN run over the final graph state.
    workload = suite["workload"]
    dataset = suite["dataset"]
    graph = dataset.graph()
    live = workload.live_ids_after(len(workload.snapshots))
    payloads = dataset.payloads()
    for obj_id in live:
        graph.add_object(obj_id, payloads[obj_id])
    benchmark.pedantic(
        lambda: DBSCANBatchAdapter(spec["sim_eps"], spec["min_pts"]).cluster(graph),
        rounds=3,
        iterations=1,
    )

    ref_by_index = {r.index: r for r in reference.rounds}
    rows = []
    f1s = f1_against_reference(dynamicc, reference)
    for record, metrics in zip(dynamicc.predict_rounds(), f1s):
        batch_round = ref_by_index[record.index]
        rows.append(
            [
                record.index,
                len(batch_round.labels),
                batch_round.latency * 1e3,
                record.latency * 1e3,
                metrics.f1,
            ]
        )
    emit(
        render_table(
            ["round", "# objects", "DBSCAN ms", "DynamicC ms", "pair-F1"],
            rows,
            title=(
                "\n== Fig 5(b): DBSCAN vs DynamicC latency on Access "
                "(paper: DynamicC saves 40-60%, F1≈0.988) =="
            ),
            precision=2,
        )
    )
    mean_f1 = sum(r[-1] for r in rows) / len(rows)
    assert mean_f1 > 0.9  # paper: 0.988
