"""Figure 5(a) — operation mix per snapshot per dataset.

The paper's workloads add/remove/update 3–35% of objects per snapshot;
this reproduces the per-snapshot operation percentages of each
generated workload.
"""

from repro.data.workload import OperationMix, build_workload
from repro.eval import render_table


def test_fig5a_operation_mix(benchmark, dbindex_suite, kmeans_suite, emit):
    def kernel():
        dataset = dbindex_suite["cora"]["dataset"]
        return build_workload(
            dataset, initial_count=50, n_snapshots=4, mixes=OperationMix(), seed=0
        )

    benchmark.pedantic(kernel, rounds=3, iterations=1)

    rows = []
    suites = {name: entry["workload"] for name, entry in dbindex_suite.items()}
    suites["road(kmeans)"] = kmeans_suite["workload"]
    for name, workload in suites.items():
        for index, add, remove, update in workload.operation_table():
            rows.append([name, index, add, remove, update])
    emit(
        render_table(
            ["dataset", "snapshot", "add %", "remove %", "update %"],
            rows,
            title="\n== Fig 5(a): operations per snapshot (paper: 3-35% mixes) ==",
            precision=1,
        )
    )
    assert rows
