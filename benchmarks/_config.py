"""Shared benchmark configuration: scaled experiment sizes.

The paper ran on the full public datasets (Cora 1.9K … Road 435K) with
a Java core; this harness runs pure Python on synthetic equivalents, so
every experiment is scaled down (see DESIGN.md §4). What must carry
over is the *shape* of each result — who wins, by what rough factor,
where curves cross — not absolute numbers. Set ``REPRO_BENCH_SCALE > 1``
to enlarge every workload proportionally.
"""

from __future__ import annotations

import os

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int) -> int:
    return max(int(round(value * SCALE)), 1)


# --- DB-index experiment datasets (Figs. 6–7, Tables 2–3, headline) -------
DBINDEX_DATASETS = {
    "cora": dict(
        generator="cora",
        n_entities=scaled(100),
        n_duplicates=scaled(350),
        distribution="zipf",
        initial=scaled(150),
        snapshots=8,
        add=0.15,
        remove=0.03,
        update=0.04,
        seed=101,
    ),
    "music": dict(
        generator="musicbrainz",
        n_entities=scaled(140),
        n_duplicates=scaled(420),
        distribution="poisson",
        initial=scaled(200),
        snapshots=10,
        add=0.13,
        remove=0.03,
        update=0.03,
        seed=102,
    ),
    "synthetic": dict(
        generator="febrl",
        n_entities=scaled(150),
        n_duplicates=scaled(350),
        distribution="zipf",
        initial=scaled(180),
        snapshots=8,
        add=0.12,
        remove=0.02,
        update=0.06,
        seed=103,
    ),
}
DBINDEX_TRAIN_ROUNDS = 3

# --- k-means / Road (Figs. 5(d), 5(e)) -------------------------------------
KMEANS_ROAD = dict(
    n_roads=scaled(25),
    points_per_road=50,
    k=scaled(25),
    penalty=1e5,
    initial=scaled(450),
    snapshots=9,
    add=0.13,
    remove=0.03,
    update=0.03,
    seed=104,
)
KMEANS_TRAIN_ROUNDS = 3

# --- DBSCAN (Figs. 5(b), 5(c)) ---------------------------------------------
DBSCAN_ACCESS = dict(
    n_profiles=scaled(25),
    n_records=scaled(4000),
    sim_eps=0.4,
    min_pts=4,
    initial=scaled(1200),
    snapshots=10,
    add=0.12,
    remove=0.02,
    update=0.02,
    seed=105,
)
DBSCAN_ROAD = dict(
    n_roads=scaled(45),
    points_per_road=60,
    sim_eps=0.37,
    min_pts=3,
    initial=scaled(900),
    snapshots=10,
    add=0.13,
    remove=0.02,
    update=0.02,
    seed=106,
)
DBSCAN_TRAIN_ROUNDS = 3

# --- Paper-reported values for side-by-side tables -------------------------
PAPER_TABLE2_F1 = {
    "cora": {"naive": [0.943, 0.912, 0.908, 0.871, 0.843],
             "greedy": [0.998, 0.985, 0.984, 0.981, 0.981],
             "dynamicc": [1.0, 0.988, 0.991, 0.983, 0.984]},
    "music": {"naive": [0.982, 0.976, 0.963, 0.945, 0.932],
              "greedy": [1.0, 0.991, 0.987, 0.986, 0.989],
              "dynamicc": [1.0, 0.996, 0.994, 0.991, 0.993]},
    "synthetic": {"naive": [0.931, 0.871, 0.864, 0.831, 0.815],
                  "greedy": [0.995, 0.985, 0.991, 0.984, 0.979],
                  "dynamicc": [0.998, 0.997, 0.989, 0.994, 0.992]},
}

PAPER_TABLE3 = {
    "cora": {"naive": (0.884, 0.806, 0.914, 0.842),
             "greedy": (0.992, 0.970, 0.994, 0.984),
             "dynamicc": (0.996, 0.972, 0.997, 0.988)},
    "music": {"naive": (0.913, 0.952, 0.943, 0.976),
              "greedy": (1.0, 0.978, 1.0, 0.992),
              "dynamicc": (1.0, 0.986, 1.0, 0.994)},
    "synthetic": {"naive": (0.835, 0.796, 0.879, 0.861),
                  "greedy": (0.987, 0.971, 0.976, 0.986),
                  "dynamicc": (0.990, 0.994, 0.999, 0.992)},
}

PAPER_TABLE4 = {
    "logistic-regression": {"accuracy": [0.77, 0.82, 0.88, 0.90, 0.93],
                            "recall": [0.25, 0.98, 1.0, 1.0, 1.0]},
    "linear-svm": {"accuracy": [0.77, 0.81, 0.87, 0.89, 0.92],
                   "recall": [0.25, 0.95, 0.96, 1.0, 1.0]},
    "decision-tree": {"accuracy": [0.86, 0.76, 0.86, 0.93, 0.95],
                      "recall": [0.75, 0.80, 0.97, 0.96, 1.0]},
}

PAPER_TABLE5 = {
    "cora": {"accuracy": [0.62, 0.74, 0.83, 0.90, 0.98],
             "recall": [0.15, 0.18, 0.98, 1.0, 1.0]},
    "music": {"accuracy": [0.84, 0.87, 0.94, 0.96, 0.97],
              "recall": [0.56, 0.93, 1.0, 1.0, 1.0]},
    "synthetic": {"accuracy": [0.73, 0.85, 0.88, 0.89, 0.93],
                  "recall": [0.47, 0.81, 0.92, 0.95, 0.98]},
}
TABLE5_FRACTIONS = [0.05, 0.10, 0.20, 0.40, 0.80]

#: Headline claims (§1): ≥like-for-like speedup vs Greedy, F1 gap to batch.
PAPER_HEADLINE_SPEEDUP_VS_GREEDY = 0.85  # "85% faster"
PAPER_HEADLINE_F1_GAP = 0.02  # "within 2% (in terms of F1)"
