"""Table 2 — pair-F1 per snapshot for DB-index clustering.

Naive / Greedy / DynamicC against the batch result as ground truth.
Paper shape: Naive degrades steadily; DynamicC ≥ Greedy, both close to 1.
"""

import _config as config
from repro.eval import render_table
from repro.eval.harness import f1_against_reference


def test_table2_pair_f1(benchmark, dbindex_suite, emit):
    entry = dbindex_suite["cora"]
    benchmark.pedantic(
        lambda: f1_against_reference(entry["dynamicc"], entry["reference"]),
        rounds=3,
        iterations=1,
    )

    rows = []
    measured = {}
    for name, entry in dbindex_suite.items():
        indices = [r.index for r in entry["dynamicc"].predict_rounds()]
        for method in ("naive", "greedy", "dynamicc"):
            run = entry[method]
            metrics = f1_against_reference(run, entry["reference"])
            by_index = {
                record.index: metric
                for record, metric in zip(run.predict_rounds(), metrics)
            }
            f1s = [by_index[i].f1 for i in indices if i in by_index]
            measured[(name, method)] = f1s
            paper = config.PAPER_TABLE2_F1[name][method]
            rows.append(
                [name, method]
                + [f"{value:.3f}" for value in f1s[:5]]
                + ["| paper:"]
                + [f"{value:.3f}" for value in paper]
            )
    emit(
        render_table(
            ["dataset", "method", "s1", "s2", "s3", "s4", "s5", "", "p1", "p2", "p3", "p4", "p5"],
            rows,
            title="\n== Table 2: pair-F1 vs batch per snapshot (measured | paper) ==",
        )
    )
    # Shape: DynamicC's mean F1 beats Naive's on every dataset.
    for name in dbindex_suite:
        dyn = sum(measured[(name, "dynamicc")]) / len(measured[(name, "dynamicc")])
        naive = sum(measured[(name, "naive")]) / len(measured[(name, "naive")])
        assert dyn > naive, f"{name}: DynamicC must beat Naive"
        assert dyn > 0.75, f"{name}: DynamicC F1 too low ({dyn:.3f})"
