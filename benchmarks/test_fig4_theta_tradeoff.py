"""Figure 4 — the θ trade-off: recall vs number of clusters to check.

Sweeping the decision threshold θ (Eq. 2): smaller θ ⇒ higher recall
but more positive predictions (more verification work). Classifier 2 of
the paper's figure is the sweet spot — 100% recall with few extra
checks, which is what the min-positive-probability rule targets.
"""

import numpy as np

from repro.eval import render_table
from repro.ml import LogisticRegressionClassifier, recall
from repro.core.training import select_theta


def test_fig4_theta_tradeoff(benchmark, evolution_samples, emit):
    X, y = evolution_samples["cora"]
    split = int(len(y) * 0.7)
    X_train, y_train = X[:split], y[:split]
    X_test, y_test = X[split:], y[split:]
    model = LogisticRegressionClassifier().fit(X_train, y_train)
    benchmark.pedantic(
        lambda: select_theta(model, X_train, y_train), rounds=5, iterations=1
    )

    chosen_theta = select_theta(model, X_train, y_train)
    probabilities = model.predict_proba(X_test)
    rows = []
    recalls = {}
    checks = {}
    for theta in (0.9, 0.7, 0.5, 0.3, chosen_theta, 0.05):
        predictions = (probabilities >= theta).astype(int)
        rec = recall(y_test, predictions)
        n_checked = int(predictions.sum())
        label = f"{theta:.3f}" + ("  <- min-positive rule" if theta == chosen_theta else "")
        rows.append([label, rec, n_checked, len(y_test)])
        recalls[theta] = rec
        checks[theta] = n_checked
    emit(
        render_table(
            ["theta", "recall", "# clusters to check", "# test samples"],
            rows,
            title=(
                "\n== Fig 4: θ trade-off (paper: smaller θ ⇒ higher recall, "
                "more checks; the rule picks ~100% recall cheaply) =="
            ),
        )
    )
    # Monotone trade-off: lowering θ never lowers recall or check counts.
    assert recalls[0.05] >= recalls[0.9]
    assert checks[0.05] >= checks[0.9]
    # The chosen θ achieves (near-)full recall on held-out data.
    assert recalls[chosen_theta] >= 0.9
