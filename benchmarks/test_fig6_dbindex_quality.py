"""Figure 6 — DB-index objective score on Cora / Music / Synthetic.

Paper shape: Naive degrades to the worst score as objects accumulate;
Hill-climbing achieves the best (lowest) score; Greedy is between Naive
and DynamicC; DynamicC(DynamicSet) ≥ DynamicC(GreedySet) in quality.
"""

from repro.clustering.objectives import DBIndexObjective
from repro.clustering.state import Clustering
from repro.eval import render_table


def test_fig6_dbindex_objective_scores(benchmark, dbindex_suite, emit):
    entry = dbindex_suite["cora"]
    final = entry["reference"].rounds[-1]
    graph = entry["dataset"].graph()
    payloads = entry["dataset"].payloads()
    for obj_id in final.labels:
        graph.add_object(obj_id, payloads[obj_id])
    clustering = Clustering.from_labels(graph, final.labels)
    benchmark.pedantic(
        lambda: DBIndexObjective().score(clustering), rounds=5, iterations=1
    )

    rows = []
    for name, entry in dbindex_suite.items():
        methods = {
            "naive": entry["naive"],
            "hill-climbing": entry["reference"],
            "greedy": entry["greedy"],
            "dynamicc(greedyset)": entry["dynamicc_greedyset"],
            "dynamicc(dynamicset)": entry["dynamicc"],
        }
        indices = [r.index for r in entry["dynamicc"].predict_rounds()]
        for method, run in methods.items():
            by_index = {r.index: r for r in run.rounds}
            for index in indices:
                record = by_index.get(index)
                if record is None or record.score is None:
                    continue
                rows.append([name, method, index, len(record.labels), record.score])
    emit(
        render_table(
            ["dataset", "method", "round", "# objects", "objective"],
            rows,
            title=(
                "\n== Fig 6: DB-index objective (lower better; paper shape: "
                "Naive worst, HC best, Greedy < DynamicC) =="
            ),
            precision=1,
        )
    )

    # Shape checks on the final round of each dataset.
    for name, entry in dbindex_suite.items():
        indices = [r.index for r in entry["dynamicc"].predict_rounds()]
        final_index = indices[-1]

        def final_score(run):
            return {r.index: r.score for r in run.rounds}[final_index]

        naive = final_score(entry["naive"])
        hc = final_score(entry["reference"])
        dyn = final_score(entry["dynamicc"])
        assert naive > dyn, f"{name}: naive should be worst"
        assert dyn < 1.5 * hc + 1e-9, f"{name}: DynamicC should approach batch"
