"""Headline claims (§1): "85% faster than the state-of-the-art method
while … within 2% (in terms of F1) of … the baseline batching algorithm".

Measured on the synthetic DB-index workload (the paper notes DynamicC
"saves significantly more overhead than Greedy on the Synthetic
dataset"). The latency ratio depends on scale — we assert the direction
(DynamicC no slower than Greedy overall, and far faster than batch) and
report the measured percentages next to the paper's.
"""

import _config as config
from repro.eval import render_table
from repro.eval.harness import f1_against_reference


def test_headline_speed_and_quality(benchmark, dbindex_suite, emit):
    entry = dbindex_suite["synthetic"]
    benchmark.pedantic(
        lambda: f1_against_reference(entry["dynamicc"], entry["reference"]),
        rounds=3,
        iterations=1,
    )

    rows = []
    for name, data in dbindex_suite.items():
        indices = [r.index for r in data["dynamicc"].predict_rounds()]
        index_set = set(indices)

        def total(run):
            return sum(r.latency for r in run.rounds if r.index in index_set)

        t_dyn = total(data["dynamicc"])
        t_greedy = total(data["greedy"])
        t_batch = total(data["reference"])
        metrics = f1_against_reference(data["dynamicc"], data["reference"])
        mean_f1 = sum(m.f1 for m in metrics) / len(metrics)
        rows.append(
            [
                name,
                (1 - t_dyn / t_greedy) * 100 if t_greedy else 0.0,
                (1 - t_dyn / t_batch) * 100,
                (1 - mean_f1) * 100,
            ]
        )
    emit(
        render_table(
            ["dataset", "faster than Greedy %", "faster than batch %", "F1 gap to batch %"],
            rows,
            title=(
                "\n== Headline: speedup & quality gap "
                f"(paper: {config.PAPER_HEADLINE_SPEEDUP_VS_GREEDY:.0%} faster than "
                f"Greedy, within {config.PAPER_HEADLINE_F1_GAP:.0%} F1 of batch) =="
            ),
            precision=1,
        )
    )
    # Directional claims that must hold at any scale.
    for name, faster_greedy, faster_batch, f1_gap in rows:
        assert faster_batch > 50.0, f"{name}: must be far faster than batch"
        assert f1_gap < 25.0, f"{name}: quality gap too large"
    # On at least one dataset DynamicC must also beat Greedy end-to-end.
    assert any(row[1] > 0 for row in rows)
