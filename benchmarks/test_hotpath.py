"""Hot-path micro-benchmarks: the kernels the serving layer lives in.

Not a paper figure: tracks the three inner loops PR-over-PR so perf
regressions in the incremental machinery are visible without running
the full stream benchmark —

* **graph ingest** — batched ``SimilarityGraph.add_objects`` throughput
  (token and vector payloads; payloads prepared once per object);
* **objective deltas** — incremental ``delta_merge``/``delta_split``/
  ``delta_move`` rates per objective (the verification kernel of
  Algorithms 1/2 and of Hill-climbing);
* **hill-climbing** — scoped greedy-pass batch clustering time from
  singletons (the observe-round kernel).

Emits a table plus ``benchmarks/results/hotpath.json``.
"""

from __future__ import annotations

import json
import random
import time

import numpy as np

from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
)
from repro.clustering.state import Clustering
from repro.eval import render_table
from repro.similarity.euclidean import EuclideanSimilarity
from repro.similarity.graph import SimilarityGraph
from repro.similarity.jaccard import JaccardSimilarity

from conftest import RESULTS_DIR

N_OBJECTS = 400
DELTA_ROUNDS = 3


def _vector_payloads(n: int, seed: int) -> dict[int, np.ndarray]:
    rng = random.Random(seed)
    centers = [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(max(n // 40, 2))]
    return {
        obj_id: np.array(
            [
                centers[obj_id % len(centers)][0] + rng.gauss(0, 0.8),
                centers[obj_id % len(centers)][1] + rng.gauss(0, 0.8),
            ]
        )
        for obj_id in range(n)
    }


def _token_payloads(n: int, seed: int) -> dict[int, str]:
    rng = random.Random(seed)
    vocab = [f"tok{i}" for i in range(max(n // 8, 8))]
    return {
        obj_id: " ".join(rng.sample(vocab, 5)) + f" ent{obj_id % (n // 10)}"
        for obj_id in range(n)
    }


def _euclidean_graph(n: int = N_OBJECTS, seed: int = 17) -> SimilarityGraph:
    graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.2)
    graph.add_objects(_vector_payloads(n, seed))
    return graph


def _time_ingest(make_graph, payloads) -> float:
    graph = make_graph()
    start = time.perf_counter()
    graph.add_objects(payloads)
    return time.perf_counter() - start


def bench_graph_ingest() -> list[dict]:
    cases = [
        (
            "euclidean",
            lambda: SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.2),
            _vector_payloads(N_OBJECTS, seed=17),
        ),
        (
            "jaccard",
            lambda: SimilarityGraph(JaccardSimilarity(), store_threshold=0.1),
            _token_payloads(N_OBJECTS, seed=23),
        ),
    ]
    results = []
    for name, make_graph, payloads in cases:
        wall = _time_ingest(make_graph, payloads)
        results.append(
            {
                "kernel": f"ingest-{name}",
                "units": "objects/s",
                "n": len(payloads),
                "wall_s": wall,
                "rate": len(payloads) / wall,
            }
        )
    return results


def bench_objective_deltas() -> list[dict]:
    graph = _euclidean_graph()
    objectives = [
        CorrelationObjective(),
        DBIndexObjective(),
        KMeansObjective(k=12, penalty=50.0),
    ]
    results = []
    for objective in objectives:
        rng = random.Random(31)
        labels = {obj_id: rng.randrange(40) for obj_id in graph.object_ids()}
        clustering = Clustering.from_labels(graph, labels)
        if isinstance(objective, KMeansObjective):
            objective.bind_graph_payloads(clustering)
        objective.score(clustering)  # warm caches
        queries = 0
        start = time.perf_counter()
        for _ in range(DELTA_ROUNDS):
            for cid in list(clustering.cluster_ids()):
                for other in list(clustering.neighbor_clusters(cid)):
                    objective.delta_merge(clustering, cid, other)
                    queries += 1
                members = sorted(clustering.members_view(cid))
                if len(members) > 1:
                    objective.delta_split(clustering, cid, {members[0]})
                    queries += 1
                    target = next(iter(clustering.neighbor_clusters(cid)), None)
                    if target is not None:
                        objective.delta_move(clustering, members[-1], target)
                        queries += 1
        wall = time.perf_counter() - start
        results.append(
            {
                "kernel": f"deltas-{objective.name}",
                "units": "deltas/s",
                "n": queries,
                "wall_s": wall,
                "rate": queries / wall,
            }
        )
    return results


def bench_hill_climbing() -> list[dict]:
    results = []
    for objective_factory in (CorrelationObjective, DBIndexObjective):
        graph = _euclidean_graph(n=200, seed=19)
        climber = HillClimbing(objective_factory())
        start = time.perf_counter()
        clustering = climber.cluster(graph)
        wall = time.perf_counter() - start
        results.append(
            {
                "kernel": f"hillclimb-{objective_factory().name}",
                "units": "objects/s",
                "n": len(graph),
                "wall_s": wall,
                "rate": len(graph) / wall,
                "clusters": clustering.num_clusters(),
            }
        )
    return results


def test_hotpath(emit):
    results = bench_graph_ingest() + bench_objective_deltas() + bench_hill_climbing()
    emit(
        render_table(
            ["kernel", "n", "wall s", "rate", "units"],
            [[r["kernel"], r["n"], r["wall_s"], r["rate"], r["units"]] for r in results],
            title="\n== hot-path micro-benchmarks ==",
            precision=1,
        )
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "hotpath.json", "w") as handle:
        json.dump({"results": results}, handle, indent=2)
        handle.write("\n")

    # Sanity floors only — absolute rates are machine-dependent; the
    # trajectory lives in the JSON artefact.
    for r in results:
        assert r["rate"] > 0
