"""Hot-path micro-benchmarks: the kernels the serving layer lives in.

Not a paper figure: tracks the three inner loops PR-over-PR so perf
regressions in the incremental machinery are visible without running
the full stream benchmark —

* **graph ingest** — batched ``SimilarityGraph.add_objects`` throughput
  (token and vector payloads; payloads prepared once per object);
* **objective deltas** — incremental ``delta_merge``/``delta_split``/
  ``delta_move`` rates per objective (the verification kernel of
  Algorithms 1/2 and of Hill-climbing);
* **hill-climbing** — scoped greedy-pass batch clustering time from
  singletons (the observe-round kernel).

Emits a table plus ``benchmarks/results/hotpath.json``. Each kernel
row also carries a ``latency`` block (p50/p95/p99 over its inner
units, via :class:`repro.obs.Histogram`) — tails regress before means
do.
"""

from __future__ import annotations

import json
import random
import time

import numpy as np

from repro.clustering.batch import HillClimbing
from repro.clustering.objectives import (
    CorrelationObjective,
    DBIndexObjective,
    KMeansObjective,
)
from repro.clustering.state import Clustering
from repro.eval import render_table
from repro.obs import Histogram
from repro.similarity.euclidean import EuclideanSimilarity
from repro.similarity.graph import SimilarityGraph
from repro.similarity.jaccard import JaccardSimilarity

from conftest import RESULTS_DIR

N_OBJECTS = 400
DELTA_ROUNDS = 3
#: Batched-ingest slice size for the per-chunk latency distribution.
INGEST_CHUNK = 40


def _vector_payloads(n: int, seed: int) -> dict[int, np.ndarray]:
    rng = random.Random(seed)
    centers = [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(max(n // 40, 2))]
    return {
        obj_id: np.array(
            [
                centers[obj_id % len(centers)][0] + rng.gauss(0, 0.8),
                centers[obj_id % len(centers)][1] + rng.gauss(0, 0.8),
            ]
        )
        for obj_id in range(n)
    }


def _token_payloads(n: int, seed: int) -> dict[int, str]:
    rng = random.Random(seed)
    vocab = [f"tok{i}" for i in range(max(n // 8, 8))]
    return {
        obj_id: " ".join(rng.sample(vocab, 5)) + f" ent{obj_id % (n // 10)}"
        for obj_id in range(n)
    }


def _euclidean_graph(n: int = N_OBJECTS, seed: int = 17) -> SimilarityGraph:
    graph = SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.2)
    graph.add_objects(_vector_payloads(n, seed))
    return graph


def _time_ingest(make_graph, payloads) -> tuple[float, Histogram]:
    """Batched ingest in chunks; returns (total wall, per-chunk latency)."""
    graph = make_graph()
    items = list(payloads.items())
    latency = Histogram()
    wall = 0.0
    for offset in range(0, len(items), INGEST_CHUNK):
        chunk = dict(items[offset : offset + INGEST_CHUNK])
        start = time.perf_counter()
        graph.add_objects(chunk)
        elapsed = time.perf_counter() - start
        latency.record(elapsed)
        wall += elapsed
    return wall, latency


def bench_graph_ingest() -> list[dict]:
    cases = [
        (
            "euclidean",
            lambda: SimilarityGraph(EuclideanSimilarity(scale=1.0), store_threshold=0.2),
            _vector_payloads(N_OBJECTS, seed=17),
        ),
        (
            "jaccard",
            lambda: SimilarityGraph(JaccardSimilarity(), store_threshold=0.1),
            _token_payloads(N_OBJECTS, seed=23),
        ),
    ]
    results = []
    for name, make_graph, payloads in cases:
        wall, latency = _time_ingest(make_graph, payloads)
        results.append(
            {
                "kernel": f"ingest-{name}",
                "units": "objects/s",
                "n": len(payloads),
                "wall_s": wall,
                "rate": len(payloads) / wall,
                "latency": latency.snapshot(),
            }
        )
    return results


def bench_objective_deltas() -> list[dict]:
    graph = _euclidean_graph()
    objectives = [
        CorrelationObjective(),
        DBIndexObjective(),
        KMeansObjective(k=12, penalty=50.0),
    ]
    results = []
    for objective in objectives:
        rng = random.Random(31)
        labels = {obj_id: rng.randrange(40) for obj_id in graph.object_ids()}
        clustering = Clustering.from_labels(graph, labels)
        if isinstance(objective, KMeansObjective):
            objective.bind_graph_payloads(clustering)
        objective.score(clustering)  # warm caches
        queries = 0
        # Per-cluster latency distribution (one sample per cid visit —
        # several delta queries each), recorded alongside the total so
        # the timing probes stay off the per-delta inner loop.
        latency = Histogram()
        start = time.perf_counter()
        for _ in range(DELTA_ROUNDS):
            for cid in list(clustering.cluster_ids()):
                cid_start = time.perf_counter()
                for other in list(clustering.neighbor_clusters(cid)):
                    objective.delta_merge(clustering, cid, other)
                    queries += 1
                members = sorted(clustering.members_view(cid))
                if len(members) > 1:
                    objective.delta_split(clustering, cid, {members[0]})
                    queries += 1
                    target = next(iter(clustering.neighbor_clusters(cid)), None)
                    if target is not None:
                        objective.delta_move(clustering, members[-1], target)
                        queries += 1
                latency.record(time.perf_counter() - cid_start)
        wall = time.perf_counter() - start
        results.append(
            {
                "kernel": f"deltas-{objective.name}",
                "units": "deltas/s",
                "n": queries,
                "wall_s": wall,
                "rate": queries / wall,
                "latency": latency.snapshot(),
            }
        )
    return results


def bench_hill_climbing(passes: int = 3) -> list[dict]:
    results = []
    for objective_factory in (CorrelationObjective, DBIndexObjective):
        graph = _euclidean_graph(n=200, seed=19)
        latency = Histogram()
        clusters = 0
        for _ in range(passes):
            climber = HillClimbing(objective_factory())
            start = time.perf_counter()
            clustering = climber.cluster(graph)
            latency.record(time.perf_counter() - start)
            clusters = clustering.num_clusters()
        # The headline rate stays best-of-N (host noise only adds),
        # the distribution is in the latency block.
        wall = latency.minimum
        results.append(
            {
                "kernel": f"hillclimb-{objective_factory().name}",
                "units": "objects/s",
                "n": len(graph),
                "wall_s": wall,
                "rate": len(graph) / wall,
                "clusters": clusters,
                "latency": latency.snapshot(),
            }
        )
    return results


def test_hotpath(emit):
    results = bench_graph_ingest() + bench_objective_deltas() + bench_hill_climbing()
    emit(
        render_table(
            ["kernel", "n", "wall s", "rate", "p50 ms", "p99 ms", "units"],
            [
                [
                    r["kernel"],
                    r["n"],
                    r["wall_s"],
                    r["rate"],
                    r["latency"]["p50"] * 1e3,
                    r["latency"]["p99"] * 1e3,
                    r["units"],
                ]
                for r in results
            ],
            title="\n== hot-path micro-benchmarks ==",
            precision=1,
        )
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "hotpath.json", "w") as handle:
        json.dump({"results": results}, handle, indent=2)
        handle.write("\n")

    # Sanity floors only — absolute rates are machine-dependent; the
    # trajectory lives in the JSON artefact.
    for r in results:
        assert r["rate"] > 0
