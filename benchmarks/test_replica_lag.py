"""Replica lag & catch-up — the `repro.replica` perf trajectory.

Not a paper figure: benchmarks the replication layer on the synthetic
Access workload so future scaling PRs (async shipping, parallel
replica apply, snapshot shipping) have numbers to beat. The primary
ingests the stream in bursts; after each burst we record how far the
replica has fallen behind (seq delta) and how long one `sync()` takes
to catch it up, plus end-to-end shipped-bytes accounting. Emits a
table and ``benchmarks/results/replica_lag.json``.

Correctness is asserted only loosely here (partition equality at the
end — the hard invariants live in ``tests/test_replica.py``); absolute
timings are machine-dependent and deliberately not gated.

The run executes with telemetry ON (one shared recorder across
primary, shipper and replicas), so alongside the lag JSON it uploads
the full observability artefact set: ``replica_lag_metrics.json`` (the
merged snapshot, span p50/p95/p99 included), ``replica_lag_metrics.prom``
(Prometheus text exposition) and ``replica_lag_trace.json`` (Chrome
trace — load at ui.perfetto.dev).
"""

from __future__ import annotations

import json
import time

from repro.clustering.objectives import DBIndexObjective
from repro.core import DynamicC
from repro.data.generators import generate_access
from repro.data.workload import OperationMix, build_workload
from repro.eval import render_table
from repro.obs import Histogram, Telemetry, write_metrics_json, write_metrics_prometheus
from repro.replica import ReplicatedClusteringService
from repro.stream import StreamConfig

from conftest import RESULTS_DIR

N_REPLICAS = 2
BURSTS = 6


def test_replica_lag(emit, tmp_path):
    dataset = generate_access(n_profiles=10, n_records=700, seed=9)
    workload = build_workload(
        dataset,
        initial_count=250,
        n_snapshots=8,
        mixes=OperationMix(add=0.12, remove=0.03, update=0.03),
        seed=4,
    )
    events = workload.event_stream()

    def factory():
        return DynamicC(dataset.graph(), DBIndexObjective(), seed=0)

    telemetry = Telemetry()
    config = StreamConfig(
        n_shards=2,
        batch_max_ops=64,
        train_rounds=2,
        oplog_path=tmp_path / "primary" / "oplog.jsonl",
        checkpoint_dir=tmp_path / "primary" / "checkpoints",
        telemetry=telemetry,
    )
    service = ReplicatedClusteringService(factory, config, max_segment_ops=256)
    for index in range(N_REPLICAS):
        service.add_replica(name=f"replica-{index}")

    ingest_latency = Histogram()
    sync_latency = Histogram()
    rows = []
    burst_size = (len(events) + BURSTS - 1) // BURSTS
    for burst in range(BURSTS):
        chunk = events[burst * burst_size : (burst + 1) * burst_size]
        if not chunk:
            break
        ingest_start = time.perf_counter()
        service.ingest(chunk)
        ingest_s = time.perf_counter() - ingest_start
        ingest_latency.record(ingest_s)

        behind = max(s["behind"] for s in service.shipper.stats())
        sync_start = time.perf_counter()
        applied = service.sync()
        sync_s = time.perf_counter() - sync_start
        sync_latency.record(sync_s)
        rows.append(
            {
                "burst": burst,
                "ops": len(chunk),
                "ingest_s": ingest_s,
                "behind_before_sync": behind,
                "ops_applied_on_sync": applied,
                "sync_s": sync_s,
                "catchup_ops_per_s": applied / sync_s if sync_s > 0 else 0.0,
                "max_seq_delta_after": max(
                    lag["seq_delta"] for lag in service.lag()
                ),
                "max_visibility_lag_s_after": max(
                    lag["visibility_lag_s"]
                    for lag in service.lag()
                    if lag["visibility_lag_s"] is not None
                ),
            }
        )

    service.flush()
    service.sync()
    primary_partition = service.primary.partition()
    for replica in service.replicas:
        assert replica.partition() == primary_partition
        assert replica.lag()["seq_delta"] == 0

    # Per-node e2e visibility percentiles (primary ingest → queryable
    # on that node), straight from the shared recorder.
    visibility = telemetry.snapshot()["metrics"]["e2e_visibility_seconds"]
    expected_nodes = {"replica=primary"} | {
        f"replica=replica-{index}" for index in range(N_REPLICAS)
    }
    assert set(visibility) == expected_nodes
    for node, hist in visibility.items():
        assert hist["count"] > 0 and hist["p99"] >= 0.0, node

    emit(
        render_table(
            ["burst", "ops", "behind", "applied", "sync s", "catchup ops/s"],
            [
                [
                    r["burst"],
                    r["ops"],
                    r["behind_before_sync"],
                    r["ops_applied_on_sync"],
                    r["sync_s"],
                    r["catchup_ops_per_s"],
                ]
                for r in rows
            ],
            title=(
                f"\n== repro.replica lag/catch-up on Access "
                f"({N_REPLICAS} replicas, single-threaded) =="
            ),
            precision=1,
        )
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "replica_lag.json", "w") as handle:
        json.dump(
            {
                "workload": "access",
                "n_replicas": N_REPLICAS,
                "events": len(events),
                "bursts": rows,
                "latency": {
                    "ingest": ingest_latency.snapshot(),
                    "sync": sync_latency.snapshot(),
                },
                # End-to-end freshness: per-node percentiles of the
                # primary-ingest→queryable-here histogram, plus the
                # final watermark trio each replica reports.
                "visibility": {
                    "e2e_visibility_seconds": visibility,
                    "watermarks": {
                        lag["name"]: {
                            "primary_watermark_ts": lag["primary_watermark_ts"],
                            "applied_watermark_ts": lag["applied_watermark_ts"],
                            "visibility_lag_s": lag["visibility_lag_s"],
                        }
                        for lag in service.lag()
                    },
                },
                "final": {
                    "primary_oplog_bytes": service.primary.stats()["oplog_bytes"],
                    "clusters": len(primary_partition),
                    "shipping": service.shipper.stats(),
                },
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    # The observability artefact set for CI upload: one merged snapshot
    # (metrics + recent spans) over the whole primary→shipper→replica
    # pipeline, its Prometheus exposition, and the Chrome trace.
    merged = service.stats()
    write_metrics_json(RESULTS_DIR / "replica_lag_metrics.json", merged)
    write_metrics_prometheus(RESULTS_DIR / "replica_lag_metrics.prom", merged)
    telemetry.write_chrome_trace(RESULTS_DIR / "replica_lag_trace.json")
    span_names = {
        name.split("=", 1)[1]
        for name in merged["primary"]["telemetry"]["metrics"]["span_seconds"]
    }
    # The shared recorder really did see every pipeline stage.
    assert {"stream.ingest", "shard.apply", "ship.publish", "replica.poll"} <= span_names

    # Sanity floors only — the trajectory lives in the JSON artefact.
    assert all(r["catchup_ops_per_s"] > 0 for r in rows)
    assert all(r["max_seq_delta_after"] == 0 for r in rows)
    service.close()
