"""Figure 3 — confusion heat map of merge-model predictions.

Paper's example: 144 clusters, accuracy 0.889, precision 0.89, recall
0.992 — heavily recall-leaning, the property §5.4 builds on.
"""

from repro.eval import render_table
from repro.ml import (
    LogisticRegressionClassifier,
    accuracy,
    confusion_matrix,
    precision,
    recall,
)


def test_fig3_confusion_heatmap(benchmark, evolution_samples, emit):
    X, y = evolution_samples["cora"]
    split = int(len(y) * 0.7)
    model = LogisticRegressionClassifier().fit(X[:split], y[:split])
    benchmark.pedantic(lambda: model.predict(X[split:]), rounds=5, iterations=1)

    y_test = y[split:]
    predictions = model.predict(X[split:])
    matrix = confusion_matrix(y_test, predictions)
    rows = [
        ["actual 0", int(matrix[0][0]), int(matrix[0][1])],
        ["actual 1", int(matrix[1][0]), int(matrix[1][1])],
    ]
    emit(
        render_table(
            ["", "predicted 0", "predicted 1"],
            rows,
            title=(
                "\n== Fig 3: merge-model confusion matrix on held-out data "
                f"(n={len(y_test)}; paper example: acc 0.889 / prec 0.89 / rec 0.992) ==\n"
                f"accuracy={accuracy(y_test, predictions):.3f} "
                f"precision={precision(y_test, predictions):.3f} "
                f"recall={recall(y_test, predictions):.3f}"
            ),
        )
    )
    assert accuracy(y_test, predictions) > 0.75
